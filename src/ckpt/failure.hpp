// Deterministic failure injection.
//
// Reproduces the paper's verification methodology (§IV-C): after a simulated
// failure, uncritical elements hold garbage while critical elements are
// restored from the pruned checkpoint; the run must still pass verification.
// Conversely, corrupting a *critical* element without restoring it must
// break verification — the negative control.
#pragma once

#include <cstdint>
#include <string>

#include "ckpt/checkpoint_io.hpp"
#include "ckpt/registry.hpp"
#include "mask/critical_mask.hpp"

namespace scrutiny::ckpt {

/// Poison values chosen to scream if they ever enter a computation.
struct PoisonPolicy {
  double float_poison = 1.0e30;
  bool use_nan = true;  ///< overrides float_poison with quiet NaN
  std::int32_t int32_poison = 0x7FFFFFF0;
  std::int64_t int64_poison = 0x7FFFFFFFFFFFFF0ll;
};

class FailureInjector {
 public:
  explicit FailureInjector(std::uint64_t seed = 0x5ca1ab1eull,
                           PoisonPolicy policy = {})
      : seed_(seed), policy_(policy) {}

  /// Overwrites EVERY element of every registered variable — simulates a
  /// node loss where memory content is gone.
  void poison_all(const CheckpointRegistry& registry) const;

  /// Overwrites only elements marked uncritical in `masks` (variables
  /// without a mask untouched).  After a pruned restore this is exactly the
  /// state a restarted application sees.
  void poison_uncritical(const CheckpointRegistry& registry,
                         const PruneMap& masks) const;

  /// Overwrites `count` randomly chosen *critical* elements of `variable`.
  /// Returns the number of elements corrupted (≤ count).
  std::size_t corrupt_critical(const CheckpointRegistry& registry,
                               const PruneMap& masks,
                               const std::string& variable,
                               std::size_t count) const;

  /// Flips one bit in the middle of a file — torn-write simulation for
  /// CRC tests.
  static void corrupt_file(const std::filesystem::path& path,
                           std::uint64_t byte_offset);

 private:
  void poison_element(const VariableInfo& variable, std::uint64_t index) const;

  std::uint64_t seed_;
  PoisonPolicy policy_;
};

}  // namespace scrutiny::ckpt
