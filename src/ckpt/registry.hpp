// Registry of variables necessary for checkpointing.
//
// Applications register the variables they determined necessary (the paper
// does this "manually by trial-and-error", Table I); the registry is then
// handed to the writer/reader and, together with per-variable criticality
// masks, defines exactly what a checkpoint contains.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ckpt/variable.hpp"

namespace scrutiny::ckpt {

class CheckpointRegistry {
 public:
  /// Registers a typed array.  The memory must outlive the registry use.
  void register_f64(const std::string& name, std::span<double> data,
                    std::vector<std::uint64_t> shape = {});
  void register_i32(const std::string& name, std::span<std::int32_t> data,
                    std::vector<std::uint64_t> shape = {});
  void register_i64(const std::string& name, std::span<std::int64_t> data,
                    std::vector<std::uint64_t> shape = {});
  /// `data` views interleaved (re,im) pairs; num_elements = pairs.
  void register_c128(const std::string& name, std::span<double> reim_pairs,
                     std::vector<std::uint64_t> shape = {});

  /// Scalar convenience (span of one).
  void register_scalar(const std::string& name, double& value) {
    register_f64(name, std::span<double>(&value, 1));
  }
  void register_scalar(const std::string& name, std::int32_t& value) {
    register_i32(name, std::span<std::int32_t>(&value, 1));
  }
  void register_scalar(const std::string& name, std::int64_t& value) {
    register_i64(name, std::span<std::int64_t>(&value, 1));
  }

  [[nodiscard]] const std::vector<VariableInfo>& variables() const noexcept {
    return variables_;
  }

  [[nodiscard]] const VariableInfo* find(const std::string& name) const;
  [[nodiscard]] VariableInfo* find(const std::string& name);

  /// Sum of all payload bytes (the "Original" column of Table III).
  [[nodiscard]] std::uint64_t total_payload_bytes() const noexcept;

  [[nodiscard]] std::size_t size() const noexcept {
    return variables_.size();
  }

 private:
  void add(VariableInfo info);

  std::vector<VariableInfo> variables_;
};

}  // namespace scrutiny::ckpt
