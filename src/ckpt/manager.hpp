// Checkpoint lifecycle management: intervals, slot rotation, latest-wins
// restart.
//
// Mirrors how application-level C/R libraries (SCR, FTI, VELOC) are driven:
// the application calls maybe_checkpoint(step) inside its main loop; the
// manager decides when to write, keeps the newest `keep_slots` objects, and
// restart() finds the most recent valid checkpoint (skipping corrupt ones —
// multi-version durability, §II-A of the paper).
//
// Storage is pluggable: the config names a backend with a BackendSpec URI
// (file:DIR, memory:, remote:HOST:PORT, each optionally +async), or an
// already-constructed backend is injected.
// Slot keys are `<basename>.<step padded to 20 digits>.ckpt`; ordering is
// by the *parsed* step number, so checkpoints written with the historical
// 8-digit pad (or any width) still rotate and restart correctly past 1e8
// steps.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/backend_spec.hpp"
#include "ckpt/checkpoint_io.hpp"
#include "ckpt/registry.hpp"
#include "ckpt/storage_backend.hpp"

namespace scrutiny::ckpt {

struct ManagerConfig {
  std::filesystem::path directory = ".";
  std::string basename = "ckpt";
  std::uint64_t interval = 1;   ///< checkpoint every N steps
  std::uint32_t keep_slots = 2; ///< newest objects retained
  bool write_regions_sidecar = false;
  /// Which backend to build (file:DIR, memory:, remote:HOST:PORT, +async).
  /// A file spec with an empty directory roots at `directory` above.
  BackendSpec storage = BackendSpec::file();
  /// Payload codec pipeline (prune ∘ delta ∘ lowprec).  The default is the
  /// historical prune-only writer.  With `codec.delta`, slots between
  /// keyframes are dirty-region deltas against the previous slot, and
  /// rotation/restart become chain-aware.
  CodecConfig codec;
};

class CheckpointManager {
 public:
  /// Builds the backend `config.storage` names (a file spec without a
  /// directory is rooted at `config.directory`).
  explicit CheckpointManager(ManagerConfig config);

  /// Seats the manager on an injected backend (e.g. a MemoryBackend shared
  /// with other components).  Slot keys are bare `<basename>.<step>.ckpt`
  /// names, so the backend is the manager's namespace; `config.storage`
  /// is ignored.
  CheckpointManager(ManagerConfig config,
                    std::shared_ptr<StorageBackend> backend);

  /// Attaches criticality masks; subsequent writes prune with them.
  /// Changing the write set invalidates the delta shadow cache, so the
  /// next slot is a keyframe.
  void set_prune_map(PruneMap masks) {
    masks_ = std::move(masks);
    cache_.invalidate();
  }
  void clear_prune_map() {
    masks_.clear();
    cache_.invalidate();
  }
  [[nodiscard]] bool pruning_enabled() const noexcept {
    return !masks_.empty();
  }

  /// Attaches per-variable lossy plans (effective when `config.codec.lossy`
  /// is set).  Invalidates the delta shadow cache like set_prune_map.
  void set_lossy_map(LossyMap plans) {
    lossy_ = std::move(plans);
    cache_.invalidate();
  }
  [[nodiscard]] bool lossy_enabled() const noexcept {
    return config_.codec.lossy && !lossy_.empty();
  }

  /// The delta shadow cache (test/diagnostic view).
  [[nodiscard]] const DeltaCache& delta_cache() const noexcept {
    return cache_;
  }

  /// Writes a checkpoint if `step` is on the interval. Returns the report
  /// when a checkpoint was written.
  std::optional<WriteReport> maybe_checkpoint(
      std::uint64_t step, const CheckpointRegistry& registry);

  /// Unconditional write.
  WriteReport checkpoint_now(std::uint64_t step,
                             const CheckpointRegistry& registry);

  /// Restores the newest valid checkpoint; returns nullopt when none exists.
  /// Corrupt objects (bad CRC/truncated) are skipped with a warning,
  /// falling back to older slots.  A delta slot restores its whole chain
  /// (keyframe first, then each delta); if any link is missing or corrupt
  /// the candidate is skipped, falling back to the newest reconstructable
  /// state.  Joins any in-flight async writes first.
  std::optional<RestoreReport> restart(const CheckpointRegistry& registry);

  /// Checkpoint keys currently committed in the backend, newest step first
  /// (ordered by parsed step number).
  [[nodiscard]] std::vector<std::string> list_checkpoint_keys() const;

  /// File-backend view of list_checkpoint_keys(): directory-joined paths.
  [[nodiscard]] std::vector<std::filesystem::path> list_checkpoints() const;

  /// Join point for async storage: blocks until committed checkpoints are
  /// durable in the inner backend and rethrows any background write error.
  /// Also applies any slot rotation deferred while writes were in flight.
  /// No-op on synchronous backends.
  void wait_for_io() {
    backend_->wait();
    rotate_slots();
  }

  [[nodiscard]] StorageBackend& storage() noexcept { return *backend_; }

  [[nodiscard]] const ManagerConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::string key_for_step(std::uint64_t step) const;

  [[nodiscard]] std::filesystem::path path_for_step(
      std::uint64_t step) const;

 private:
  /// One committed slot, plus the base step its delta depends on (nullopt
  /// for self-contained keyframes).
  struct Slot {
    std::uint64_t step = 0;
    std::string key;
    std::optional<std::uint64_t> base;
  };

  /// Parses `<basename>.<digits>.ckpt`; nullopt for foreign keys.
  [[nodiscard]] std::optional<std::uint64_t> step_of_key(
      const std::string& key) const;
  void adopt_existing_slots();
  void rotate_slots();

  ManagerConfig config_;
  std::shared_ptr<StorageBackend> backend_;
  PruneMap masks_;
  LossyMap lossy_;
  DeltaCache cache_;
  /// Delta slots written since the last keyframe (cadence counter).
  std::uint64_t since_keyframe_ = 0;
  /// Steps this manager knows are committed, newest first — rotation works
  /// off this cache so it never has to list (and thus join) an async
  /// backend in the checkpoint hot path.
  std::vector<Slot> slots_;
};

}  // namespace scrutiny::ckpt
