// Checkpoint lifecycle management: intervals, slot rotation, latest-wins
// restart.
//
// Mirrors how application-level C/R libraries (SCR, FTI, VELOC) are driven:
// the application calls maybe_checkpoint(step) inside its main loop; the
// manager decides when to write, keeps the newest `keep_slots` files, and
// restart() finds the most recent valid checkpoint (skipping corrupt ones —
// multi-version durability, §II-A of the paper).
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint_io.hpp"
#include "ckpt/registry.hpp"

namespace scrutiny::ckpt {

struct ManagerConfig {
  std::filesystem::path directory = ".";
  std::string basename = "ckpt";
  std::uint64_t interval = 1;   ///< checkpoint every N steps
  std::uint32_t keep_slots = 2; ///< newest files retained
  bool write_regions_sidecar = false;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(ManagerConfig config);

  /// Attaches criticality masks; subsequent writes prune with them.
  void set_prune_map(PruneMap masks) { masks_ = std::move(masks); }
  void clear_prune_map() { masks_.clear(); }
  [[nodiscard]] bool pruning_enabled() const noexcept {
    return !masks_.empty();
  }

  /// Writes a checkpoint if `step` is on the interval. Returns the report
  /// when a checkpoint was written.
  std::optional<WriteReport> maybe_checkpoint(
      std::uint64_t step, const CheckpointRegistry& registry);

  /// Unconditional write.
  WriteReport checkpoint_now(std::uint64_t step,
                             const CheckpointRegistry& registry);

  /// Restores the newest valid checkpoint; returns nullopt when none exists.
  /// Corrupt files (bad CRC/truncated) are skipped with a warning, falling
  /// back to older slots.
  std::optional<RestoreReport> restart(const CheckpointRegistry& registry);

  /// Checkpoint files managed in this directory, newest step first.
  [[nodiscard]] std::vector<std::filesystem::path> list_checkpoints() const;

  [[nodiscard]] const ManagerConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] std::filesystem::path path_for_step(
      std::uint64_t step) const;

 private:
  void rotate_slots();

  ManagerConfig config_;
  PruneMap masks_;
};

}  // namespace scrutiny::ckpt
