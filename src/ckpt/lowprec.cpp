#include "ckpt/lowprec.hpp"

#include <vector>

#include "mask/region.hpp"
#include "support/binary_io.hpp"
#include "support/error.hpp"

namespace scrutiny::ckpt {

namespace {
constexpr std::uint64_t kMagic = 0x53435255'4D495831ull;  // "SCRU MIX1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kModeFull = 0;
constexpr std::uint8_t kModeMixed = 2;

void write_regions(BinaryWriter& writer, const RegionList& regions) {
  writer.write(static_cast<std::uint64_t>(regions.num_regions()));
  for (const Region& region : regions.regions()) {
    writer.write(region.begin);
    writer.write(region.end);
  }
}

RegionList read_regions(BinaryReader& reader, std::uint64_t limit,
                        const std::string& context) {
  RegionList regions;
  const auto count = reader.read<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    Region region;
    region.begin = reader.read<std::uint64_t>();
    region.end = reader.read<std::uint64_t>();
    SCRUTINY_REQUIRE(region.begin < region.end && region.end <= limit,
                     "corrupt region in " + context);
    regions.append(region);
  }
  return regions;
}
}  // namespace

MixedWriteReport write_mixed_checkpoint(const std::filesystem::path& path,
                                        const CheckpointRegistry& registry,
                                        std::uint64_t step,
                                        const PrecisionMap& plans) {
  MixedWriteReport report;
  BinaryWriter writer(path);
  writer.write(kMagic);
  writer.write(kVersion);
  writer.write(step);
  writer.write(static_cast<std::uint32_t>(registry.size()));

  for (const VariableInfo& variable : registry.variables()) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.type));
    writer.write(variable.num_elements);

    const auto it = plans.find(variable.name);
    const bool mixed =
        it != plans.end() && variable.type == DataType::Float64;
    if (!mixed) {
      writer.write(kModeFull);
      const auto bytes = variable.bytes();
      writer.write_bytes(bytes.data(), bytes.size());
      report.payload_bytes += bytes.size();
      report.f64_elements += variable.num_elements;
      continue;
    }

    const PrecisionPlan& plan = it->second;
    SCRUTINY_REQUIRE(plan.critical.size() == variable.num_elements &&
                         plan.low_impact.size() == variable.num_elements,
                     "precision plan size mismatch: " + variable.name);

    // High = critical AND NOT low_impact; low = critical AND low_impact.
    CriticalMask high = plan.critical;
    CriticalMask low = plan.low_impact;
    low.merge_and(plan.critical);
    CriticalMask not_low = low;
    not_low.invert();
    high.merge_and(not_low);

    const RegionList high_regions = RegionList::from_mask(high);
    const RegionList low_regions = RegionList::from_mask(low);

    writer.write(kModeMixed);
    write_regions(writer, high_regions);
    write_regions(writer, low_regions);
    report.aux_bytes +=
        high_regions.serialized_bytes() + low_regions.serialized_bytes();

    const auto* values = reinterpret_cast<const double*>(variable.data);
    for (const Region& region : high_regions.regions()) {
      writer.write_bytes(values + region.begin,
                         region.length() * sizeof(double));
      report.payload_bytes += region.length() * sizeof(double);
      report.f64_elements += region.length();
    }
    std::vector<float> narrow;
    for (const Region& region : low_regions.regions()) {
      narrow.resize(static_cast<std::size_t>(region.length()));
      for (std::uint64_t i = 0; i < region.length(); ++i) {
        narrow[static_cast<std::size_t>(i)] =
            static_cast<float>(values[region.begin + i]);
      }
      writer.write_bytes(narrow.data(), narrow.size() * sizeof(float));
      report.payload_bytes += region.length() * sizeof(float);
      report.f32_elements += region.length();
    }
    report.dropped_elements += variable.num_elements -
                               high_regions.covered_elements() -
                               low_regions.covered_elements();
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.commit();
  report.file_bytes = std::filesystem::file_size(path);
  return report;
}

MixedRestoreReport restore_mixed_checkpoint(
    const std::filesystem::path& path, const CheckpointRegistry& registry) {
  BinaryReader reader(path);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a mixed checkpoint: " + path.string());
  SCRUTINY_REQUIRE(reader.read<std::uint32_t>() == kVersion,
                   "unsupported mixed checkpoint version: " + path.string());

  MixedRestoreReport report;
  report.step = reader.read<std::uint64_t>();
  const auto num_vars = reader.read<std::uint32_t>();

  for (std::uint32_t v = 0; v < num_vars; ++v) {
    const std::string name = reader.read_string();
    const auto dtype = static_cast<DataType>(reader.read<std::uint8_t>());
    const auto num_elements = reader.read<std::uint64_t>();

    const VariableInfo* variable = registry.find(name);
    SCRUTINY_REQUIRE(variable != nullptr, "unknown variable: " + name);
    SCRUTINY_REQUIRE(variable->type == dtype &&
                         variable->num_elements == num_elements,
                     "metadata mismatch restoring " + name);

    const auto mode = reader.read<std::uint8_t>();
    if (mode == kModeFull) {
      const auto bytes = variable->bytes();
      reader.read_bytes(bytes.data(), bytes.size());
      report.f64_elements += num_elements;
      continue;
    }
    SCRUTINY_REQUIRE(mode == kModeMixed,
                     "corrupt section mode in " + path.string());
    const RegionList high = read_regions(reader, num_elements, name);
    const RegionList low = read_regions(reader, num_elements, name);

    auto* values = reinterpret_cast<double*>(variable->data);
    for (const Region& region : high.regions()) {
      reader.read_bytes(values + region.begin,
                        region.length() * sizeof(double));
      report.f64_elements += region.length();
    }
    std::vector<float> narrow;
    for (const Region& region : low.regions()) {
      narrow.resize(static_cast<std::size_t>(region.length()));
      reader.read_bytes(narrow.data(), narrow.size() * sizeof(float));
      for (std::uint64_t i = 0; i < region.length(); ++i) {
        values[region.begin + i] =
            static_cast<double>(narrow[static_cast<std::size_t>(i)]);
      }
      report.f32_elements += region.length();
    }
    report.untouched_elements +=
        num_elements - high.covered_elements() - low.covered_elements();
  }

  const std::uint64_t computed = reader.crc();
  const auto stored = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(computed == stored,
                   "mixed checkpoint CRC mismatch: " + path.string());
  return report;
}

}  // namespace scrutiny::ckpt
