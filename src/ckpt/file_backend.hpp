// On-disk storage backend: one file per key, atomic commit.
//
// Keys are relative paths joined onto the backend root (an empty root makes
// keys plain filesystem paths, which is how the path-based checkpoint_io
// compatibility API is implemented).  Writes target `<path>.tmp` and
// commit() renames onto the final name — the classic C/R commit protocol:
// a crash mid-write leaves only a stale .tmp, never a truncated file under
// the committed name, so restart's latest-wins scan can trust any name it
// sees.  list() skips in-flight .tmp files for the same reason.
#pragma once

#include <filesystem>
#include <fstream>

#include "ckpt/storage_backend.hpp"

namespace scrutiny::ckpt {

class FileBackend final : public StorageBackend {
 public:
  explicit FileBackend(std::filesystem::path root = {})
      : root_(std::move(root)) {}

  [[nodiscard]] std::unique_ptr<StorageWriter> open_for_write(
      const std::string& key) override;
  [[nodiscard]] std::unique_ptr<StorageReader> open_for_read(
      const std::string& key) override;
  [[nodiscard]] bool exists(const std::string& key) override;
  void remove(const std::string& key) override;
  [[nodiscard]] std::vector<std::string> list(
      const std::string& prefix) override;
  [[nodiscard]] std::string name() const override { return "file"; }

  /// The file a key maps to (root / key).
  [[nodiscard]] std::filesystem::path path_for(const std::string& key) const {
    return root_ / key;
  }

 private:
  std::filesystem::path root_;
};

}  // namespace scrutiny::ckpt
