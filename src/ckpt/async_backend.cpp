#include "ckpt/async_backend.hpp"

#include <algorithm>
#include <utility>

#include "support/byte_buffer.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace scrutiny::ckpt {

namespace {

/// Drain granularity: large snapshots go to the inner backend in bounded
/// chunks so a slow sink never holds one multi-hundred-MB append call.
constexpr std::size_t kDrainChunkBytes = 4u << 20;

}  // namespace

class AsyncWriter final : public StorageWriter {
 public:
  AsyncWriter(AsyncBackend& backend, std::size_t slot_index, std::string key)
      : backend_(&backend), slot_index_(slot_index), key_(std::move(key)) {}

  ~AsyncWriter() override {
    if (!committed_) backend_->release_slot(slot_index_);
  }

  void append(const void* data, std::size_t size) override {
    SCRUTINY_REQUIRE(!committed_, "append after commit");
    // The slot is in Filling state: owned by this writer, no lock needed.
    append_bytes(backend_->slots_[slot_index_].buffer, data, size);
    bytes_written_ += size;
  }

  void commit() override {
    SCRUTINY_REQUIRE(!committed_, "double commit");
    committed_ = true;
    backend_->enqueue(slot_index_, key_);
  }

  [[nodiscard]] std::uint64_t bytes_written() const noexcept override {
    // Tracked locally: after commit() the slot belongs to the drain thread
    // and may already be recycled.
    return bytes_written_;
  }

 private:
  AsyncBackend* backend_;
  std::size_t slot_index_;
  std::string key_;
  std::uint64_t bytes_written_ = 0;
  bool committed_ = false;
};

AsyncBackend::AsyncBackend(std::unique_ptr<StorageBackend> inner)
    : inner_(std::move(inner)) {
  SCRUTINY_REQUIRE(inner_ != nullptr, "AsyncBackend needs an inner backend");
  worker_ = std::thread([this] { drain_loop(); });
}

AsyncBackend::~AsyncBackend() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  worker_.join();
  if (error_ != nullptr) {
    try {
      std::rethrow_exception(error_);
    } catch (const std::exception& e) {
      log_warn("ckpt", std::string("async backend dropped a background "
                                   "write error (no wait() call): ") +
                           e.what());
    } catch (...) {
      log_warn("ckpt", "async backend dropped a background write error "
                       "(no wait() call)");
    }
  }
}

std::size_t AsyncBackend::acquire_slot() {
  std::unique_lock<std::mutex> lock(mutex_);
  rethrow_pending_error_locked(lock);
  const auto find_free = [this]() -> std::size_t {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state == SlotState::Free) return i;
    }
    return slots_.size();
  };
  std::size_t index = find_free();
  if (index == slots_.size()) {
    // Both buffers in flight: checkpoint production outran the drain.
    ++stalls_;
    slot_available_.wait(lock,
                         [&] { return (index = find_free()) < slots_.size(); });
    rethrow_pending_error_locked(lock);
  }
  slots_[index].state = SlotState::Filling;
  slots_[index].buffer.clear();  // capacity retained from the last drain
  return index;
}

void AsyncBackend::enqueue(std::size_t slot_index, std::string key) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_[slot_index].state = SlotState::Queued;
    slots_[slot_index].key = std::move(key);
    queue_.push_back(slot_index);
  }
  work_available_.notify_one();
}

void AsyncBackend::release_slot(std::size_t slot_index) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    slots_[slot_index].state = SlotState::Free;
    slots_[slot_index].key.clear();
  }
  slot_available_.notify_all();
}

bool AsyncBackend::key_in_flight(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::any_of(slots_.begin(), slots_.end(), [&](const Slot& slot) {
    return (slot.state == SlotState::Queued ||
            slot.state == SlotState::Draining) &&
           slot.key == key;
  });
}

void AsyncBackend::drain_loop() {
  for (;;) {
    std::size_t index;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;  // stopping and fully drained
      index = queue_.front();
      queue_.pop_front();
      slots_[index].state = SlotState::Draining;
    }
    // Drain outside the lock: the app thread keeps filling the other slot.
    Slot& slot = slots_[index];
    try {
      auto writer = inner_->open_for_write(slot.key);
      const std::byte* data = slot.buffer.data();
      std::size_t remaining = slot.buffer.size();
      while (remaining > 0) {
        const std::size_t chunk = std::min(remaining, kDrainChunkBytes);
        writer->append(data, chunk);
        data += chunk;
        remaining -= chunk;
      }
      writer->commit();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    release_slot(index);
  }
}

void AsyncBackend::rethrow_pending_error_locked(
    std::unique_lock<std::mutex>& lock) {
  (void)lock;  // caller holds mutex_
  if (error_ != nullptr) {
    std::exception_ptr error = std::exchange(error_, nullptr);
    std::rethrow_exception(error);
  }
}

void AsyncBackend::wait() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    slot_available_.wait(lock, [this] {
      if (!queue_.empty()) return false;
      return std::none_of(slots_.begin(), slots_.end(), [](const Slot& slot) {
        return slot.state == SlotState::Queued ||
               slot.state == SlotState::Draining;
      });
    });
    rethrow_pending_error_locked(lock);
  }
  // The inner backend may drain asynchronously too (async(remote) stacks a
  // daemon-side scheduler under us): joining only our slots is not drained.
  inner_->wait();
}

std::unique_ptr<StorageWriter> AsyncBackend::open_for_write(
    const std::string& key) {
  const std::size_t index = acquire_slot();
  return std::make_unique<AsyncWriter>(*this, index, key);
}

std::unique_ptr<StorageReader> AsyncBackend::open_for_read(
    const std::string& key) {
  if (key_in_flight(key)) wait();
  return inner_->open_for_read(key);
}

bool AsyncBackend::exists(const std::string& key) {
  if (key_in_flight(key)) return true;  // committed, drain pending
  return inner_->exists(key);
}

void AsyncBackend::remove(const std::string& key) {
  // Settled keys (the slot-rotation case) are removed without stalling the
  // pipeline; an in-flight key must land first or the drain would recreate
  // it after the removal.
  if (key_in_flight(key)) wait();
  inner_->remove(key);
}

std::vector<std::string> AsyncBackend::list(const std::string& prefix) {
  wait();
  return inner_->list(prefix);
}

bool AsyncBackend::drained() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!queue_.empty() || error_ != nullptr) return false;
    const bool local = std::none_of(
        slots_.begin(), slots_.end(), [](const Slot& slot) {
          return slot.state == SlotState::Queued ||
                 slot.state == SlotState::Draining;
        });
    if (!local) return false;
  }
  return inner_->drained();
}

std::uint64_t AsyncBackend::buffer_stalls() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stalls_;
}

std::size_t AsyncBackend::queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t AsyncBackend::bytes_in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t bytes = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::Queued || slot.state == SlotState::Draining) {
      bytes += slot.buffer.size();
    }
  }
  return bytes;
}

}  // namespace scrutiny::ckpt
