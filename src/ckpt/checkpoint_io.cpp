#include "ckpt/checkpoint_io.hpp"

#include <vector>

#include "support/binary_io.hpp"
#include "support/error.hpp"

namespace scrutiny::ckpt {

namespace {
constexpr std::uint64_t kMagic = 0x53435255'434B5031ull;  // "SCRU CKP1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kModeFull = 0;
constexpr std::uint8_t kModePruned = 1;
}  // namespace

WriteReport write_checkpoint(const std::filesystem::path& path,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const PruneMap* masks) {
  WriteReport report;
  BinaryWriter writer(path);
  writer.write(kMagic);
  writer.write(kVersion);
  writer.write(step);
  writer.write(static_cast<std::uint32_t>(registry.size()));

  for (const VariableInfo& variable : registry.variables()) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.type));
    writer.write(variable.element_size());
    writer.write(variable.num_elements);
    writer.write(static_cast<std::uint8_t>(variable.shape.size()));
    for (std::uint64_t dim : variable.shape) writer.write(dim);

    const CriticalMask* mask = nullptr;
    if (masks != nullptr) {
      const auto it = masks->find(variable.name);
      if (it != masks->end()) {
        SCRUTINY_REQUIRE(it->second.size() == variable.num_elements,
                         "mask size mismatch for " + variable.name);
        mask = &it->second;
      }
    }

    // Pruning only pays off when the dropped elements outweigh the region
    // metadata; tiny or fully-critical variables fall back to full mode
    // (strictly-greater test: break even still exercises pruned I/O).
    if (mask != nullptr) {
      const RegionList regions = RegionList::from_mask(*mask);
      const std::uint64_t pruned_cost =
          regions.covered_elements() * variable.element_size() +
          regions.serialized_bytes();
      if (pruned_cost > variable.total_bytes()) mask = nullptr;
    }

    const std::span<std::byte> bytes = variable.bytes();
    if (mask == nullptr) {
      writer.write(kModeFull);
      writer.write_bytes(bytes.data(), bytes.size());
      report.payload_bytes += bytes.size();
      report.elements_written += variable.num_elements;
    } else {
      writer.write(kModePruned);
      const RegionList regions = RegionList::from_mask(*mask);
      writer.write(static_cast<std::uint64_t>(regions.num_regions()));
      for (const Region& region : regions.regions()) {
        writer.write(region.begin);
        writer.write(region.end);
      }
      report.aux_bytes += regions.serialized_bytes();
      const std::uint32_t esize = variable.element_size();
      for (const Region& region : regions.regions()) {
        writer.write_bytes(bytes.data() + region.begin * esize,
                           region.length() * esize);
        report.payload_bytes += region.length() * esize;
        report.elements_written += region.length();
      }
      report.elements_skipped +=
          variable.num_elements - regions.covered_elements();
    }
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.commit();
  report.file_bytes = std::filesystem::file_size(path);
  return report;
}

RestoreReport restore_checkpoint(const std::filesystem::path& path,
                                 const CheckpointRegistry& registry) {
  BinaryReader reader(path);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + path.string());
  SCRUTINY_REQUIRE(reader.read<std::uint32_t>() == kVersion,
                   "unsupported checkpoint version: " + path.string());

  RestoreReport report;
  report.step = reader.read<std::uint64_t>();
  const auto num_vars = reader.read<std::uint32_t>();

  // First pass: scatter payloads into bound memory.
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    const std::string name = reader.read_string();
    const auto dtype = static_cast<DataType>(reader.read<std::uint8_t>());
    const auto element_size = reader.read<std::uint32_t>();
    const auto num_elements = reader.read<std::uint64_t>();
    const auto ndim = reader.read<std::uint8_t>();
    for (std::uint8_t d = 0; d < ndim; ++d) {
      (void)reader.read<std::uint64_t>();
    }

    const VariableInfo* variable = registry.find(name);
    SCRUTINY_REQUIRE(variable != nullptr,
                     "checkpoint has unknown variable: " + name);
    SCRUTINY_REQUIRE(variable->type == dtype,
                     "type mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->num_elements == num_elements,
                     "element count mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->element_size() == element_size,
                     "element size mismatch restoring " + name);

    const std::span<std::byte> bytes = variable->bytes();
    const auto mode = reader.read<std::uint8_t>();
    if (mode == kModeFull) {
      reader.read_bytes(bytes.data(), bytes.size());
      report.elements_restored += num_elements;
    } else {
      SCRUTINY_REQUIRE(mode == kModePruned,
                       "corrupt section mode in " + path.string());
      report.pruned = true;
      const auto num_regions = reader.read<std::uint64_t>();
      std::vector<Region> regions(num_regions);
      for (Region& region : regions) {
        region.begin = reader.read<std::uint64_t>();
        region.end = reader.read<std::uint64_t>();
        SCRUTINY_REQUIRE(region.begin < region.end &&
                             region.end <= num_elements,
                         "corrupt region restoring " + name);
      }
      std::uint64_t restored = 0;
      for (const Region& region : regions) {
        reader.read_bytes(bytes.data() + region.begin * element_size,
                          region.length() * element_size);
        restored += region.length();
      }
      report.elements_restored += restored;
      report.elements_untouched += num_elements - restored;
    }
  }

  const std::uint64_t computed = reader.crc();
  const auto stored = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(computed == stored,
                   "checkpoint CRC mismatch (corrupt or torn file): " +
                       path.string());
  return report;
}

std::uint64_t peek_checkpoint_step(const std::filesystem::path& path) {
  BinaryReader reader(path);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + path.string());
  SCRUTINY_REQUIRE(reader.read<std::uint32_t>() == kVersion,
                   "unsupported checkpoint version: " + path.string());
  return reader.read<std::uint64_t>();
}

void save_regions_sidecar(const std::filesystem::path& checkpoint_path,
                          const CheckpointRegistry& registry,
                          const PruneMap& masks) {
  RegionFile file;
  for (const VariableInfo& variable : registry.variables()) {
    const auto it = masks.find(variable.name);
    if (it == masks.end()) continue;
    VariableRegions regions;
    regions.name = variable.name;
    regions.element_size = variable.element_size();
    regions.total_elements = variable.num_elements;
    regions.critical = RegionList::from_mask(it->second);
    file.variables.push_back(std::move(regions));
  }
  std::filesystem::path sidecar = checkpoint_path;
  sidecar += ".regions";
  file.save(sidecar);
}

}  // namespace scrutiny::ckpt
