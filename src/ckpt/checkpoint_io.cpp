#include "ckpt/checkpoint_io.hpp"

#include <cstring>
#include <vector>

#include "ckpt/file_backend.hpp"
#include "support/byte_buffer.hpp"
#include "support/crc64.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace scrutiny::ckpt {

namespace {
constexpr std::uint64_t kMagic = 0x53435255'434B5031ull;  // "SCRU CKP1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kVersion2 = 2;
constexpr std::uint8_t kModeFull = 0;
constexpr std::uint8_t kModePruned = 1;
constexpr std::uint8_t kModeLossy = 2;
constexpr std::uint8_t kModeDelta = 3;

/// Dirty runs separated by at most this many clean elements coalesce: a
/// clean fp64 element carried inside an XOR-mask run costs ~1 byte, far
/// below another 16-byte region descriptor.
constexpr std::uint64_t kDirtyMergeGap = 8;

/// Staging bound for the streaming serializer: small header fields coalesce
/// up to this size before hitting the backend; anything at least this large
/// (variable payloads) bypasses the buffer entirely.
constexpr std::size_t kChunkBytes = 256u * 1024;

/// Streaming framing writer: bounded chunk buffer + incremental CRC-64
/// over a StorageWriter.
class ChunkedWriter {
 public:
  explicit ChunkedWriter(StorageWriter& sink) : sink_(&sink) {
    buffer_.reserve(kChunkBytes);
  }

  void write_bytes(const void* data, std::size_t size) {
    crc_.update(data, size);
    if (size >= kChunkBytes) {
      // Large payload spans go straight from application memory to the
      // backend — zero staging copies on the write path.
      flush();
      sink_->append(data, size);
      return;
    }
    if (buffer_.size() + size > kChunkBytes) flush();
    append_bytes(buffer_, data, size);
  }

  template <typename T>
  void write(const T& value) {
    write_bytes(&value, sizeof(T));
  }

  void write_string(std::string_view text) {
    write(static_cast<std::uint32_t>(text.size()));
    write_bytes(text.data(), text.size());
  }

  [[nodiscard]] std::uint64_t crc() const noexcept { return crc_.value(); }

  void flush() {
    if (buffer_.empty()) return;
    sink_->append(buffer_.data(), buffer_.size());
    buffer_.clear();
  }

 private:
  StorageWriter* sink_;
  std::vector<std::byte> buffer_;
  Crc64 crc_;
};

/// Streaming framing reader with running CRC-64 over a StorageReader.
/// Variable payloads land directly in the registry's bound memory.
class ChunkedReader {
 public:
  ChunkedReader(StorageReader& source, std::string context)
      : source_(&source), context_(std::move(context)) {}

  void read_bytes(void* data, std::size_t size) {
    source_->read(data, size);
    crc_.update(data, size);
  }

  template <typename T>
  [[nodiscard]] T read() {
    T value{};
    read_bytes(&value, sizeof(T));
    return value;
  }

  [[nodiscard]] std::string read_string() {
    const auto length = read<std::uint32_t>();
    SCRUTINY_REQUIRE(length <= (1u << 20),
                     "implausible string length in " + context_);
    std::string text(length, '\0');
    read_bytes(text.data(), length);
    return text;
  }

  [[nodiscard]] std::uint64_t crc() const noexcept { return crc_.value(); }
  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

 private:
  StorageReader* source_;
  std::string context_;
  Crc64 crc_;
};

void write_regions(ChunkedWriter& writer, const RegionList& regions) {
  writer.write(static_cast<std::uint64_t>(regions.num_regions()));
  for (const Region& region : regions.regions()) {
    writer.write(region.begin);
    writer.write(region.end);
  }
}

/// Serialized footprint of a region list: count field plus the pairs.
[[nodiscard]] std::uint64_t regions_cost(const RegionList& regions) {
  return 8 + 16 * regions.num_regions();
}

[[nodiscard]] constexpr std::uint64_t quantized_elem_size(
    LossyPrecision precision) {
  return precision == LossyPrecision::F16 ? 2 : 4;
}

void append_quantized(std::vector<std::byte>& out, const double* values,
                      std::uint64_t count, LossyPrecision precision) {
  if (precision == LossyPrecision::F16) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint16_t half = f16_from_f64(values[i]);
      append_bytes(out, &half, sizeof(half));
    }
  } else {
    for (std::uint64_t i = 0; i < count; ++i) {
      const float single = static_cast<float>(values[i]);
      append_bytes(out, &single, sizeof(single));
    }
  }
}

void read_quantized(ChunkedReader& reader, double* values,
                    std::uint64_t count, LossyPrecision precision) {
  if (precision == LossyPrecision::F16) {
    std::vector<std::uint16_t> halves(static_cast<std::size_t>(count));
    reader.read_bytes(halves.data(), halves.size() * sizeof(std::uint16_t));
    for (std::uint64_t i = 0; i < count; ++i) {
      values[i] = f64_from_f16(halves[i]);
    }
  } else {
    std::vector<float> singles(static_cast<std::size_t>(count));
    reader.read_bytes(singles.data(), singles.size() * sizeof(float));
    for (std::uint64_t i = 0; i < count; ++i) {
      values[i] = static_cast<double>(singles[i]);
    }
  }
}

[[nodiscard]] RegionList read_region_list(ChunkedReader& reader,
                                          std::uint64_t num_elements,
                                          const std::string& name) {
  const auto num_regions = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(num_regions <= num_elements,
                   "implausible region count restoring " + name);
  RegionList regions;
  for (std::uint64_t r = 0; r < num_regions; ++r) {
    Region region;
    region.begin = reader.read<std::uint64_t>();
    region.end = reader.read<std::uint64_t>();
    SCRUTINY_REQUIRE(region.begin < region.end && region.end <= num_elements,
                     "corrupt region restoring " + name);
    regions.append(region);
  }
  return regions;
}

/// Accumulating stopwatch for the codec CPU share of a write.
class CodecClock {
 public:
  void start() { timer_.restart(); }
  void stop() { total_ += timer_.seconds(); }
  [[nodiscard]] double total() const noexcept { return total_; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace

WriteReport write_checkpoint(StorageBackend& backend, const std::string& key,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const PruneMap* masks) {
  const Timer timer;
  WriteReport report;
  const std::unique_ptr<StorageWriter> sink = backend.open_for_write(key);
  ChunkedWriter writer(*sink);
  writer.write(kMagic);
  writer.write(kVersion);
  writer.write(step);
  writer.write(static_cast<std::uint32_t>(registry.size()));

  for (const VariableInfo& variable : registry.variables()) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.type));
    writer.write(variable.element_size());
    writer.write(variable.num_elements);
    writer.write(static_cast<std::uint8_t>(variable.shape.size()));
    for (std::uint64_t dim : variable.shape) writer.write(dim);

    const CriticalMask* mask = nullptr;
    if (masks != nullptr) {
      const auto it = masks->find(variable.name);
      if (it != masks->end()) {
        SCRUTINY_REQUIRE(it->second.size() == variable.num_elements,
                         "mask size mismatch for " + variable.name);
        mask = &it->second;
      }
    }

    // Pruning only pays off when the dropped elements outweigh the region
    // metadata; tiny or fully-critical variables fall back to full mode
    // (strictly-greater test: break even still exercises pruned I/O).
    if (mask != nullptr) {
      const RegionList regions = RegionList::from_mask(*mask);
      const std::uint64_t pruned_cost =
          regions.covered_elements() * variable.element_size() +
          regions.serialized_bytes();
      if (pruned_cost > variable.total_bytes()) mask = nullptr;
    }

    const std::span<std::byte> bytes = variable.bytes();
    if (mask == nullptr) {
      writer.write(kModeFull);
      writer.write_bytes(bytes.data(), bytes.size());
      report.payload_bytes += bytes.size();
      report.raw_payload_bytes += bytes.size();
      report.elements_written += variable.num_elements;
    } else {
      writer.write(kModePruned);
      const RegionList regions = RegionList::from_mask(*mask);
      writer.write(static_cast<std::uint64_t>(regions.num_regions()));
      for (const Region& region : regions.regions()) {
        writer.write(region.begin);
        writer.write(region.end);
      }
      report.aux_bytes += regions.serialized_bytes();
      const std::uint32_t esize = variable.element_size();
      for (const Region& region : regions.regions()) {
        writer.write_bytes(bytes.data() + region.begin * esize,
                           region.length() * esize);
        report.payload_bytes += region.length() * esize;
        report.raw_payload_bytes += region.length() * esize;
        report.elements_written += region.length();
      }
      report.elements_skipped +=
          variable.num_elements - regions.covered_elements();
    }
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.flush();
  sink->commit();
  report.file_bytes = sink->bytes_written();
  report.seconds = timer.seconds();
  return report;
}

WriteReport write_checkpoint(const std::filesystem::path& path,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const PruneMap* masks) {
  FileBackend backend;
  return write_checkpoint(backend, path.string(), registry, step, masks);
}

WriteReport write_checkpoint(StorageBackend& backend, const std::string& key,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const CodecRequest& request) {
  const bool lossy_active =
      request.lossy != nullptr && !request.lossy->empty();
  if (!lossy_active && request.delta == nullptr) {
    // No codec and no shadow bookkeeping: the historical v1 writer.
    return write_checkpoint(backend, key, registry, step, request.masks);
  }
  const bool delta_slot = request.delta_slot;
  if (delta_slot) {
    SCRUTINY_REQUIRE(request.delta != nullptr && request.delta->valid(),
                     "delta slot requested without a valid shadow cache: " +
                         key);
  }
  // Pure prune (or full) keyframes stay format v1 byte-identically; only
  // an active delta or lossy codec needs the v2 descriptor.
  const bool v2 = lossy_active || delta_slot;

  const Timer timer;
  CodecClock codec;
  WriteReport report;
  // Post-commit shadow images; adopted by the cache only after the backend
  // confirms the slot, so a failed write leaves the cache on the previous
  // committed slot.
  std::vector<std::pair<std::string, std::vector<std::byte>>> staged;

  const std::unique_ptr<StorageWriter> sink = backend.open_for_write(key);
  ChunkedWriter writer(*sink);
  writer.write(kMagic);
  writer.write(v2 ? kVersion2 : kVersion);
  writer.write(step);
  if (v2) {
    std::uint8_t flags = 0;
    if (request.masks != nullptr && !request.masks->empty()) {
      flags |= kCkptFlagPruned;
    }
    if (delta_slot) flags |= kCkptFlagDelta;
    if (lossy_active) flags |= kCkptFlagLossy;
    writer.write(flags);
    writer.write(delta_slot ? request.delta->base_step() : std::uint64_t{0});
  }
  writer.write(static_cast<std::uint32_t>(registry.size()));

  for (const VariableInfo& variable : registry.variables()) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.type));
    writer.write(variable.element_size());
    writer.write(variable.num_elements);
    writer.write(static_cast<std::uint8_t>(variable.shape.size()));
    for (std::uint64_t dim : variable.shape) writer.write(dim);

    const CriticalMask* mask = nullptr;
    if (request.masks != nullptr) {
      const auto it = request.masks->find(variable.name);
      if (it != request.masks->end()) {
        SCRUTINY_REQUIRE(it->second.size() == variable.num_elements,
                         "mask size mismatch for " + variable.name);
        mask = &it->second;
      }
    }
    // Same break-even as the v1 writer: pruning must beat the metadata.
    if (mask != nullptr) {
      const RegionList regions = RegionList::from_mask(*mask);
      const std::uint64_t pruned_cost =
          regions.covered_elements() * variable.element_size() +
          regions.serialized_bytes();
      if (pruned_cost > variable.total_bytes()) mask = nullptr;
    }

    const std::span<std::byte> bytes = variable.bytes();
    const std::uint32_t esize = variable.element_size();

    codec.start();
    RegionList write_set;
    if (mask != nullptr) {
      write_set = RegionList::from_mask(*mask);
    } else if (variable.num_elements > 0) {
      write_set.append(Region{0, variable.num_elements});
    }
    report.raw_payload_bytes += write_set.covered_elements() * esize;

    const LossyPlan* plan = nullptr;
    RegionList low_ws;
    RegionList high_ws;
    if (lossy_active) {
      const auto it = request.lossy->find(variable.name);
      if (it != request.lossy->end()) {
        SCRUTINY_REQUIRE(variable.type == DataType::Float64,
                         "lossy plan on non-f64 variable " + variable.name);
        SCRUTINY_REQUIRE(it->second.low.size() == variable.num_elements,
                         "lossy mask size mismatch for " + variable.name);
        low_ws = regions_where(write_set, it->second.low, true);
        if (low_ws.num_regions() > 0) {
          plan = &it->second;
          high_ws = regions_where(write_set, it->second.low, false);
        }
      }
    }

    // Effective image = what a restore of this slot reconstructs (lossy
    // lows round-tripped).  Doubles as the staged shadow for the cache.
    const std::byte* effective = bytes.data();
    std::vector<std::byte> scratch;
    if (plan != nullptr || request.delta != nullptr) {
      scratch.assign(bytes.begin(), bytes.end());
      if (plan != nullptr) {
        double* values = reinterpret_cast<double*>(scratch.data());
        for (const Region& region : low_ws.regions()) {
          for (std::uint64_t e = region.begin; e < region.end; ++e) {
            values[e] = lossy_round_trip(values[e], plan->precision);
          }
        }
      }
      effective = scratch.data();
    }

    // Cost of the keyframe-style section a delta would have to beat.
    std::uint64_t raw_cost = 0;
    if (plan != nullptr) {
      raw_cost = 1 + regions_cost(high_ws) + regions_cost(low_ws) +
                 high_ws.covered_elements() * esize +
                 low_ws.covered_elements() *
                     quantized_elem_size(plan->precision);
    } else if (mask != nullptr) {
      raw_cost = regions_cost(write_set) + write_set.covered_elements() * esize;
    } else {
      raw_cost = bytes.size();
    }
    codec.stop();

    bool wrote_delta = false;
    if (delta_slot) {
      const std::vector<std::byte>* shadow =
          request.delta->shadow(variable.name);
      if (shadow != nullptr && shadow->size() == bytes.size()) {
        codec.start();
        const RegionList dirty = dirty_regions(
            effective, shadow->data(), esize, write_set, kDirtyMergeGap);
        const RegionList high_dirty =
            plan != nullptr ? regions_where(dirty, plan->low, false) : dirty;
        const RegionList low_dirty =
            plan != nullptr ? regions_where(dirty, plan->low, true)
                            : RegionList{};

        std::vector<std::byte> enc;
        std::vector<std::uint64_t> enc_lens;
        enc_lens.reserve(high_dirty.num_regions());
        for (const Region& region : high_dirty.regions()) {
          enc_lens.push_back(xor_mask_encode(
              effective + region.begin * esize,
              shadow->data() + region.begin * esize, region.length() * esize,
              enc));
        }
        std::vector<std::byte> low_payload;
        if (plan != nullptr && low_dirty.num_regions() > 0) {
          const double* values =
              reinterpret_cast<const double*>(bytes.data());
          low_payload.reserve(low_dirty.covered_elements() *
                              quantized_elem_size(plan->precision));
          for (const Region& region : low_dirty.regions()) {
            append_quantized(low_payload, values + region.begin,
                             region.length(), plan->precision);
          }
        }
        const std::uint64_t delta_cost =
            1 + regions_cost(high_dirty) + regions_cost(low_dirty) +
            8 * high_dirty.num_regions() + enc.size() + low_payload.size();
        codec.stop();

        if (delta_cost < raw_cost) {
          writer.write(kModeDelta);
          writer.write(static_cast<std::uint8_t>(
              plan != nullptr ? static_cast<std::uint8_t>(plan->precision)
                              : std::uint8_t{0}));
          write_regions(writer, high_dirty);
          write_regions(writer, low_dirty);
          std::size_t offset = 0;
          for (std::size_t r = 0; r < enc_lens.size(); ++r) {
            writer.write(enc_lens[r]);
            writer.write_bytes(enc.data() + offset, enc_lens[r]);
            offset += static_cast<std::size_t>(enc_lens[r]);
          }
          if (!low_payload.empty()) {
            writer.write_bytes(low_payload.data(), low_payload.size());
          }
          report.aux_bytes += 1 + regions_cost(high_dirty) +
                              regions_cost(low_dirty) +
                              8 * high_dirty.num_regions();
          report.payload_bytes += enc.size() + low_payload.size();
          const std::uint64_t covered =
              high_dirty.covered_elements() + low_dirty.covered_elements();
          report.elements_written += covered;
          report.elements_skipped += variable.num_elements - covered;
          wrote_delta = true;
        }
      }
    }

    if (!wrote_delta && plan != nullptr) {
      // Lossy keyframe section.
      writer.write(kModeLossy);
      writer.write(static_cast<std::uint8_t>(plan->precision));
      write_regions(writer, high_ws);
      write_regions(writer, low_ws);
      for (const Region& region : high_ws.regions()) {
        writer.write_bytes(bytes.data() + region.begin * esize,
                           region.length() * esize);
      }
      codec.start();
      std::vector<std::byte> low_payload;
      const double* values = reinterpret_cast<const double*>(bytes.data());
      low_payload.reserve(low_ws.covered_elements() *
                          quantized_elem_size(plan->precision));
      for (const Region& region : low_ws.regions()) {
        append_quantized(low_payload, values + region.begin, region.length(),
                         plan->precision);
      }
      codec.stop();
      if (!low_payload.empty()) {
        writer.write_bytes(low_payload.data(), low_payload.size());
      }
      report.aux_bytes += 1 + regions_cost(high_ws) + regions_cost(low_ws);
      report.payload_bytes +=
          high_ws.covered_elements() * esize + low_payload.size();
      const std::uint64_t covered =
          high_ws.covered_elements() + low_ws.covered_elements();
      report.elements_written += covered;
      report.elements_skipped += variable.num_elements - covered;
    } else if (!wrote_delta && mask == nullptr) {
      writer.write(kModeFull);
      writer.write_bytes(bytes.data(), bytes.size());
      report.payload_bytes += bytes.size();
      report.elements_written += variable.num_elements;
    } else if (!wrote_delta) {
      writer.write(kModePruned);
      write_regions(writer, write_set);
      report.aux_bytes += write_set.serialized_bytes();
      for (const Region& region : write_set.regions()) {
        writer.write_bytes(bytes.data() + region.begin * esize,
                           region.length() * esize);
        report.payload_bytes += region.length() * esize;
        report.elements_written += region.length();
      }
      report.elements_skipped +=
          variable.num_elements - write_set.covered_elements();
    }

    if (request.delta != nullptr) {
      staged.emplace_back(variable.name, std::move(scratch));
    }
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.flush();
  sink->commit();

  if (request.delta != nullptr) {
    codec.start();
    for (auto& [name, image] : staged) {
      request.delta->store(name, std::move(image));
    }
    request.delta->set_base(step);
    codec.stop();
  }

  report.file_bytes = sink->bytes_written();
  report.seconds = timer.seconds();
  report.codec_seconds = codec.total();
  return report;
}

RestoreReport restore_checkpoint(StorageBackend& backend,
                                 const std::string& key,
                                 const CheckpointRegistry& registry) {
  const Timer timer;
  const std::unique_ptr<StorageReader> source = backend.open_for_read(key);
  ChunkedReader reader(*source, key);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + key);
  const auto version = reader.read<std::uint32_t>();
  SCRUTINY_REQUIRE(version == kVersion || version == kVersion2,
                   "unsupported checkpoint version: " + key);

  RestoreReport report;
  report.step = reader.read<std::uint64_t>();
  if (version == kVersion2) {
    const auto flags = reader.read<std::uint8_t>();
    const auto base = reader.read<std::uint64_t>();
    if ((flags & kCkptFlagDelta) != 0) report.base_step = base;
  }
  const auto num_vars = reader.read<std::uint32_t>();

  // Scatter payloads into bound memory as sections stream past.
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    const std::string name = reader.read_string();
    const auto dtype = static_cast<DataType>(reader.read<std::uint8_t>());
    const auto element_size = reader.read<std::uint32_t>();
    const auto num_elements = reader.read<std::uint64_t>();
    const auto ndim = reader.read<std::uint8_t>();
    for (std::uint8_t d = 0; d < ndim; ++d) {
      (void)reader.read<std::uint64_t>();
    }

    const VariableInfo* variable = registry.find(name);
    SCRUTINY_REQUIRE(variable != nullptr,
                     "checkpoint has unknown variable: " + name);
    SCRUTINY_REQUIRE(variable->type == dtype,
                     "type mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->num_elements == num_elements,
                     "element count mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->element_size() == element_size,
                     "element size mismatch restoring " + name);

    const std::span<std::byte> bytes = variable->bytes();
    const auto mode = reader.read<std::uint8_t>();
    if (mode == kModeFull) {
      reader.read_bytes(bytes.data(), bytes.size());
      report.elements_restored += num_elements;
    } else if (mode == kModePruned) {
      report.pruned = true;
      const RegionList regions = read_region_list(reader, num_elements, name);
      std::uint64_t restored = 0;
      for (const Region& region : regions.regions()) {
        reader.read_bytes(bytes.data() + region.begin * element_size,
                          region.length() * element_size);
        restored += region.length();
      }
      report.elements_restored += restored;
      report.elements_untouched += num_elements - restored;
    } else if (mode == kModeLossy) {
      SCRUTINY_REQUIRE(version == kVersion2,
                       "lossy section in a v1 container: " + key);
      SCRUTINY_REQUIRE(dtype == DataType::Float64,
                       "lossy section on non-f64 variable " + name);
      const auto precision_byte = reader.read<std::uint8_t>();
      SCRUTINY_REQUIRE(precision_byte == 1 || precision_byte == 2,
                       "corrupt lossy precision restoring " + name);
      const auto precision = static_cast<LossyPrecision>(precision_byte);
      const RegionList high = read_region_list(reader, num_elements, name);
      const RegionList low = read_region_list(reader, num_elements, name);
      for (const Region& region : high.regions()) {
        reader.read_bytes(bytes.data() + region.begin * element_size,
                          region.length() * element_size);
      }
      double* values = reinterpret_cast<double*>(bytes.data());
      for (const Region& region : low.regions()) {
        read_quantized(reader, values + region.begin, region.length(),
                       precision);
      }
      report.lossy = true;
      const std::uint64_t restored =
          high.covered_elements() + low.covered_elements();
      if (restored < num_elements) report.pruned = true;
      report.elements_restored += restored;
      report.elements_untouched += num_elements - restored;
    } else {
      SCRUTINY_REQUIRE(mode == kModeDelta,
                       "corrupt section mode in " + key);
      SCRUTINY_REQUIRE(version == kVersion2 && report.base_step.has_value(),
                       "delta section outside a delta slot: " + key);
      const auto precision_byte = reader.read<std::uint8_t>();
      SCRUTINY_REQUIRE(precision_byte <= 2,
                       "corrupt delta precision restoring " + name);
      const RegionList high = read_region_list(reader, num_elements, name);
      const RegionList low = read_region_list(reader, num_elements, name);
      SCRUTINY_REQUIRE(low.num_regions() == 0 || precision_byte != 0,
                       "lossy delta regions without a precision: " + name);
      if (precision_byte != 0) {
        SCRUTINY_REQUIRE(dtype == DataType::Float64,
                         "lossy delta on non-f64 variable " + name);
        report.lossy = true;
      }
      // The XOR streams reconstruct on top of the base slot's bytes, which
      // the caller (chain-aware manager restart) has already restored.
      std::vector<std::byte> enc;
      for (const Region& region : high.regions()) {
        const auto enc_len = reader.read<std::uint64_t>();
        const std::uint64_t raw = region.length() * element_size;
        SCRUTINY_REQUIRE(enc_len <= xor_mask_worst_case(raw),
                         "implausible delta stream restoring " + name);
        enc.resize(static_cast<std::size_t>(enc_len));
        reader.read_bytes(enc.data(), enc.size());
        SCRUTINY_REQUIRE(
            xor_mask_decode(enc.data(), enc.size(),
                            bytes.data() + region.begin * element_size,
                            static_cast<std::size_t>(raw)),
            "corrupt delta stream restoring " + name);
      }
      if (precision_byte != 0) {
        const auto precision = static_cast<LossyPrecision>(precision_byte);
        double* values = reinterpret_cast<double*>(bytes.data());
        for (const Region& region : low.regions()) {
          read_quantized(reader, values + region.begin, region.length(),
                         precision);
        }
      }
      report.pruned = true;
      const std::uint64_t restored =
          high.covered_elements() + low.covered_elements();
      report.elements_restored += restored;
      report.elements_untouched += num_elements - restored;
    }
  }

  const std::uint64_t computed = reader.crc();
  const auto stored = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(computed == stored,
                   "checkpoint CRC mismatch (corrupt or torn file): " + key);
  report.file_bytes = source->bytes_read();
  report.seconds = timer.seconds();
  return report;
}

RestoreReport restore_checkpoint(const std::filesystem::path& path,
                                 const CheckpointRegistry& registry) {
  FileBackend backend;
  return restore_checkpoint(backend, path.string(), registry);
}

CheckpointInfo peek_checkpoint_info(StorageBackend& backend,
                                    const std::string& key) {
  const std::unique_ptr<StorageReader> source = backend.open_for_read(key);
  ChunkedReader reader(*source, key);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + key);
  CheckpointInfo info;
  info.version = reader.read<std::uint32_t>();
  SCRUTINY_REQUIRE(info.version == kVersion || info.version == kVersion2,
                   "unsupported checkpoint version: " + key);
  info.step = reader.read<std::uint64_t>();
  if (info.version == kVersion2) {
    info.flags = reader.read<std::uint8_t>();
    const auto base = reader.read<std::uint64_t>();
    if ((info.flags & kCkptFlagDelta) != 0) info.base_step = base;
  }
  return info;
}

std::uint64_t peek_checkpoint_step(StorageBackend& backend,
                                   const std::string& key) {
  return peek_checkpoint_info(backend, key).step;
}

std::uint64_t peek_checkpoint_step(const std::filesystem::path& path) {
  FileBackend backend;
  return peek_checkpoint_step(backend, path.string());
}

void save_regions_sidecar(StorageBackend& backend,
                          const std::string& checkpoint_key,
                          const CheckpointRegistry& registry,
                          const PruneMap& masks) {
  RegionFile file;
  for (const VariableInfo& variable : registry.variables()) {
    const auto it = masks.find(variable.name);
    if (it == masks.end()) continue;
    VariableRegions regions;
    regions.name = variable.name;
    regions.element_size = variable.element_size();
    regions.total_elements = variable.num_elements;
    regions.critical = RegionList::from_mask(it->second);
    file.variables.push_back(std::move(regions));
  }
  const std::vector<std::byte> bytes = file.serialize();
  const std::unique_ptr<StorageWriter> sink =
      backend.open_for_write(checkpoint_key + ".regions");
  sink->append(bytes.data(), bytes.size());
  sink->commit();
}

void save_regions_sidecar(const std::filesystem::path& checkpoint_path,
                          const CheckpointRegistry& registry,
                          const PruneMap& masks) {
  FileBackend backend;
  save_regions_sidecar(backend, checkpoint_path.string(), registry, masks);
}

}  // namespace scrutiny::ckpt
