#include "ckpt/checkpoint_io.hpp"

#include <cstring>
#include <vector>

#include "ckpt/file_backend.hpp"
#include "support/byte_buffer.hpp"
#include "support/crc64.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace scrutiny::ckpt {

namespace {
constexpr std::uint64_t kMagic = 0x53435255'434B5031ull;  // "SCRU CKP1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint8_t kModeFull = 0;
constexpr std::uint8_t kModePruned = 1;

/// Staging bound for the streaming serializer: small header fields coalesce
/// up to this size before hitting the backend; anything at least this large
/// (variable payloads) bypasses the buffer entirely.
constexpr std::size_t kChunkBytes = 256u * 1024;

/// Streaming framing writer: bounded chunk buffer + incremental CRC-64
/// over a StorageWriter.
class ChunkedWriter {
 public:
  explicit ChunkedWriter(StorageWriter& sink) : sink_(&sink) {
    buffer_.reserve(kChunkBytes);
  }

  void write_bytes(const void* data, std::size_t size) {
    crc_.update(data, size);
    if (size >= kChunkBytes) {
      // Large payload spans go straight from application memory to the
      // backend — zero staging copies on the write path.
      flush();
      sink_->append(data, size);
      return;
    }
    if (buffer_.size() + size > kChunkBytes) flush();
    append_bytes(buffer_, data, size);
  }

  template <typename T>
  void write(const T& value) {
    write_bytes(&value, sizeof(T));
  }

  void write_string(std::string_view text) {
    write(static_cast<std::uint32_t>(text.size()));
    write_bytes(text.data(), text.size());
  }

  [[nodiscard]] std::uint64_t crc() const noexcept { return crc_.value(); }

  void flush() {
    if (buffer_.empty()) return;
    sink_->append(buffer_.data(), buffer_.size());
    buffer_.clear();
  }

 private:
  StorageWriter* sink_;
  std::vector<std::byte> buffer_;
  Crc64 crc_;
};

/// Streaming framing reader with running CRC-64 over a StorageReader.
/// Variable payloads land directly in the registry's bound memory.
class ChunkedReader {
 public:
  ChunkedReader(StorageReader& source, std::string context)
      : source_(&source), context_(std::move(context)) {}

  void read_bytes(void* data, std::size_t size) {
    source_->read(data, size);
    crc_.update(data, size);
  }

  template <typename T>
  [[nodiscard]] T read() {
    T value{};
    read_bytes(&value, sizeof(T));
    return value;
  }

  [[nodiscard]] std::string read_string() {
    const auto length = read<std::uint32_t>();
    SCRUTINY_REQUIRE(length <= (1u << 20),
                     "implausible string length in " + context_);
    std::string text(length, '\0');
    read_bytes(text.data(), length);
    return text;
  }

  [[nodiscard]] std::uint64_t crc() const noexcept { return crc_.value(); }
  [[nodiscard]] const std::string& context() const noexcept {
    return context_;
  }

 private:
  StorageReader* source_;
  std::string context_;
  Crc64 crc_;
};

}  // namespace

WriteReport write_checkpoint(StorageBackend& backend, const std::string& key,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const PruneMap* masks) {
  const Timer timer;
  WriteReport report;
  const std::unique_ptr<StorageWriter> sink = backend.open_for_write(key);
  ChunkedWriter writer(*sink);
  writer.write(kMagic);
  writer.write(kVersion);
  writer.write(step);
  writer.write(static_cast<std::uint32_t>(registry.size()));

  for (const VariableInfo& variable : registry.variables()) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.type));
    writer.write(variable.element_size());
    writer.write(variable.num_elements);
    writer.write(static_cast<std::uint8_t>(variable.shape.size()));
    for (std::uint64_t dim : variable.shape) writer.write(dim);

    const CriticalMask* mask = nullptr;
    if (masks != nullptr) {
      const auto it = masks->find(variable.name);
      if (it != masks->end()) {
        SCRUTINY_REQUIRE(it->second.size() == variable.num_elements,
                         "mask size mismatch for " + variable.name);
        mask = &it->second;
      }
    }

    // Pruning only pays off when the dropped elements outweigh the region
    // metadata; tiny or fully-critical variables fall back to full mode
    // (strictly-greater test: break even still exercises pruned I/O).
    if (mask != nullptr) {
      const RegionList regions = RegionList::from_mask(*mask);
      const std::uint64_t pruned_cost =
          regions.covered_elements() * variable.element_size() +
          regions.serialized_bytes();
      if (pruned_cost > variable.total_bytes()) mask = nullptr;
    }

    const std::span<std::byte> bytes = variable.bytes();
    if (mask == nullptr) {
      writer.write(kModeFull);
      writer.write_bytes(bytes.data(), bytes.size());
      report.payload_bytes += bytes.size();
      report.elements_written += variable.num_elements;
    } else {
      writer.write(kModePruned);
      const RegionList regions = RegionList::from_mask(*mask);
      writer.write(static_cast<std::uint64_t>(regions.num_regions()));
      for (const Region& region : regions.regions()) {
        writer.write(region.begin);
        writer.write(region.end);
      }
      report.aux_bytes += regions.serialized_bytes();
      const std::uint32_t esize = variable.element_size();
      for (const Region& region : regions.regions()) {
        writer.write_bytes(bytes.data() + region.begin * esize,
                           region.length() * esize);
        report.payload_bytes += region.length() * esize;
        report.elements_written += region.length();
      }
      report.elements_skipped +=
          variable.num_elements - regions.covered_elements();
    }
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.flush();
  sink->commit();
  report.file_bytes = sink->bytes_written();
  report.seconds = timer.seconds();
  return report;
}

WriteReport write_checkpoint(const std::filesystem::path& path,
                             const CheckpointRegistry& registry,
                             std::uint64_t step, const PruneMap* masks) {
  FileBackend backend;
  return write_checkpoint(backend, path.string(), registry, step, masks);
}

RestoreReport restore_checkpoint(StorageBackend& backend,
                                 const std::string& key,
                                 const CheckpointRegistry& registry) {
  const Timer timer;
  const std::unique_ptr<StorageReader> source = backend.open_for_read(key);
  ChunkedReader reader(*source, key);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + key);
  SCRUTINY_REQUIRE(reader.read<std::uint32_t>() == kVersion,
                   "unsupported checkpoint version: " + key);

  RestoreReport report;
  report.step = reader.read<std::uint64_t>();
  const auto num_vars = reader.read<std::uint32_t>();

  // Scatter payloads into bound memory as sections stream past.
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    const std::string name = reader.read_string();
    const auto dtype = static_cast<DataType>(reader.read<std::uint8_t>());
    const auto element_size = reader.read<std::uint32_t>();
    const auto num_elements = reader.read<std::uint64_t>();
    const auto ndim = reader.read<std::uint8_t>();
    for (std::uint8_t d = 0; d < ndim; ++d) {
      (void)reader.read<std::uint64_t>();
    }

    const VariableInfo* variable = registry.find(name);
    SCRUTINY_REQUIRE(variable != nullptr,
                     "checkpoint has unknown variable: " + name);
    SCRUTINY_REQUIRE(variable->type == dtype,
                     "type mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->num_elements == num_elements,
                     "element count mismatch restoring " + name);
    SCRUTINY_REQUIRE(variable->element_size() == element_size,
                     "element size mismatch restoring " + name);

    const std::span<std::byte> bytes = variable->bytes();
    const auto mode = reader.read<std::uint8_t>();
    if (mode == kModeFull) {
      reader.read_bytes(bytes.data(), bytes.size());
      report.elements_restored += num_elements;
    } else {
      SCRUTINY_REQUIRE(mode == kModePruned,
                       "corrupt section mode in " + key);
      report.pruned = true;
      const auto num_regions = reader.read<std::uint64_t>();
      SCRUTINY_REQUIRE(num_regions <= num_elements,
                       "implausible region count restoring " + name);
      std::vector<Region> regions(static_cast<std::size_t>(num_regions));
      for (Region& region : regions) {
        region.begin = reader.read<std::uint64_t>();
        region.end = reader.read<std::uint64_t>();
        SCRUTINY_REQUIRE(region.begin < region.end &&
                             region.end <= num_elements,
                         "corrupt region restoring " + name);
      }
      std::uint64_t restored = 0;
      for (const Region& region : regions) {
        reader.read_bytes(bytes.data() + region.begin * element_size,
                          region.length() * element_size);
        restored += region.length();
      }
      report.elements_restored += restored;
      report.elements_untouched += num_elements - restored;
    }
  }

  const std::uint64_t computed = reader.crc();
  const auto stored = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(computed == stored,
                   "checkpoint CRC mismatch (corrupt or torn file): " + key);
  report.file_bytes = source->bytes_read();
  report.seconds = timer.seconds();
  return report;
}

RestoreReport restore_checkpoint(const std::filesystem::path& path,
                                 const CheckpointRegistry& registry) {
  FileBackend backend;
  return restore_checkpoint(backend, path.string(), registry);
}

std::uint64_t peek_checkpoint_step(StorageBackend& backend,
                                   const std::string& key) {
  const std::unique_ptr<StorageReader> source = backend.open_for_read(key);
  ChunkedReader reader(*source, key);
  SCRUTINY_REQUIRE(reader.read<std::uint64_t>() == kMagic,
                   "not a checkpoint file: " + key);
  SCRUTINY_REQUIRE(reader.read<std::uint32_t>() == kVersion,
                   "unsupported checkpoint version: " + key);
  return reader.read<std::uint64_t>();
}

std::uint64_t peek_checkpoint_step(const std::filesystem::path& path) {
  FileBackend backend;
  return peek_checkpoint_step(backend, path.string());
}

void save_regions_sidecar(StorageBackend& backend,
                          const std::string& checkpoint_key,
                          const CheckpointRegistry& registry,
                          const PruneMap& masks) {
  RegionFile file;
  for (const VariableInfo& variable : registry.variables()) {
    const auto it = masks.find(variable.name);
    if (it == masks.end()) continue;
    VariableRegions regions;
    regions.name = variable.name;
    regions.element_size = variable.element_size();
    regions.total_elements = variable.num_elements;
    regions.critical = RegionList::from_mask(it->second);
    file.variables.push_back(std::move(regions));
  }
  const std::vector<std::byte> bytes = file.serialize();
  const std::unique_ptr<StorageWriter> sink =
      backend.open_for_write(checkpoint_key + ".regions");
  sink->append(bytes.data(), bytes.size());
  sink->commit();
}

void save_regions_sidecar(const std::filesystem::path& checkpoint_path,
                          const CheckpointRegistry& registry,
                          const PruneMap& masks) {
  FileBackend backend;
  save_regions_sidecar(backend, checkpoint_path.string(), registry, masks);
}

}  // namespace scrutiny::ckpt
