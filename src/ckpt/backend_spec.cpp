#include "ckpt/backend_spec.hpp"

#include <charconv>
#include <mutex>
#include <utility>

#include "ckpt/async_backend.hpp"
#include "ckpt/file_backend.hpp"
#include "ckpt/memory_backend.hpp"
#include "support/error.hpp"

namespace scrutiny::ckpt {

namespace {

constexpr std::string_view kAsyncSuffix = "+async";

/// The inventory string every rejection names, so a typo'd scheme teaches
/// the whole grammar (the CliArgs::require_known precedent).
constexpr std::string_view kInventory =
    "expected file:DIR, memory:, or remote:HOST:PORT — each scheme may "
    "carry +async (e.g. file+async:DIR); bare \"file\" and \"memory\" "
    "remain as aliases";

[[noreturn]] void reject(std::string_view text, std::string_view why) {
  throw ScrutinyError("invalid storage backend spec \"" + std::string(text) +
                      "\": " + std::string(why) + " (" +
                      std::string(kInventory) + ")");
}

std::mutex g_remote_mutex;
RemoteBackendFactory g_remote_factory;  // guarded by g_remote_mutex

}  // namespace

BackendSpec BackendSpec::file(std::filesystem::path dir, bool async) {
  BackendSpec spec;
  spec.scheme = BackendScheme::File;
  spec.directory = dir.string();
  spec.async = async;
  return spec;
}

BackendSpec BackendSpec::memory(bool async) {
  BackendSpec spec;
  spec.scheme = BackendScheme::Memory;
  spec.async = async;
  return spec;
}

BackendSpec BackendSpec::remote(std::string host, std::uint16_t port,
                                bool async) {
  BackendSpec spec;
  spec.scheme = BackendScheme::Remote;
  spec.host = std::move(host);
  spec.port = port;
  spec.async = async;
  return spec;
}

BackendSpec BackendSpec::parse(std::string_view text) {
  if (text.empty()) reject(text, "empty spec");

  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    // The historical enum spellings, kept as documented aliases of the
    // colon forms ("file" == "file:", "memory" == "memory:").
    if (text == "file") return file();
    if (text == "memory") return memory();
    reject(text, "unknown storage backend scheme \"" + std::string(text) +
                     "\"");
  }

  std::string_view scheme_text = text.substr(0, colon);
  std::string_view rest = text.substr(colon + 1);

  bool async = false;
  if (scheme_text.size() > kAsyncSuffix.size() &&
      scheme_text.substr(scheme_text.size() - kAsyncSuffix.size()) ==
          kAsyncSuffix) {
    async = true;
    scheme_text.remove_suffix(kAsyncSuffix.size());
  }

  if (scheme_text == "file") {
    BackendSpec spec = file({}, async);
    spec.directory = std::string(rest);
    return spec;
  }
  if (scheme_text == "memory") {
    if (!rest.empty()) {
      reject(text, "memory: takes no argument after the colon");
    }
    return memory(async);
  }
  if (scheme_text == "remote") {
    const std::size_t port_colon = rest.rfind(':');
    if (port_colon == std::string_view::npos || port_colon == 0) {
      reject(text, "remote needs HOST:PORT after the scheme");
    }
    const std::string_view host = rest.substr(0, port_colon);
    const std::string_view port_text = rest.substr(port_colon + 1);
    std::uint32_t port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 0xffff) {
      reject(text, "remote port must be a number in [1, 65535], got \"" +
                       std::string(port_text) + "\"");
    }
    return remote(std::string(host), static_cast<std::uint16_t>(port),
                  async);
  }
  reject(text, "unknown storage backend scheme \"" +
                   std::string(scheme_text) + "\"");
}

std::string BackendSpec::format() const {
  std::string out(backend_scheme_name(scheme));
  if (async) out += kAsyncSuffix;
  out += ':';
  switch (scheme) {
    case BackendScheme::File:
      out += directory;
      break;
    case BackendScheme::Memory:
      break;
    case BackendScheme::Remote:
      out += host;
      out += ':';
      out += std::to_string(port);
      break;
  }
  return out;
}

void register_remote_backend_factory(RemoteBackendFactory factory) {
  const std::lock_guard<std::mutex> lock(g_remote_mutex);
  g_remote_factory = std::move(factory);
}

bool remote_backend_factory_registered() {
  const std::lock_guard<std::mutex> lock(g_remote_mutex);
  return static_cast<bool>(g_remote_factory);
}

std::unique_ptr<StorageBackend> make_backend(
    const BackendSpec& spec, const std::filesystem::path& default_directory) {
  std::unique_ptr<StorageBackend> backend;
  switch (spec.scheme) {
    case BackendScheme::File: {
      std::filesystem::path root = spec.directory.empty()
                                       ? default_directory
                                       : std::filesystem::path(spec.directory);
      if (!root.empty()) std::filesystem::create_directories(root);
      backend = std::make_unique<FileBackend>(std::move(root));
      break;
    }
    case BackendScheme::Memory:
      backend = std::make_unique<MemoryBackend>();
      break;
    case BackendScheme::Remote: {
      RemoteBackendFactory factory;
      {
        const std::lock_guard<std::mutex> lock(g_remote_mutex);
        factory = g_remote_factory;
      }
      SCRUTINY_REQUIRE(
          factory,
          "remote storage backends need the serve layer: link scrutiny_serve "
          "and call serve::register_remote_scheme() before constructing " +
              spec.format());
      BackendSpec inner = spec;
      inner.async = false;  // the wrap below is uniform across schemes
      backend = factory(inner);
      SCRUTINY_REQUIRE(backend != nullptr,
                       "remote backend factory returned null for " +
                           spec.format());
      break;
    }
  }
  if (spec.async) {
    backend = std::make_unique<AsyncBackend>(std::move(backend));
  }
  return backend;
}

}  // namespace scrutiny::ckpt
