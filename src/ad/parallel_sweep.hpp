// Parallel scheduler for the blocked reverse sweep.
//
// One recorded tape, many seeded outputs: the serial analyzer chunks the
// seed list into blocks of Model::kLanes and pays one reverse pass per
// block.  Those passes are independent — each block's adjoint state
// depends only on (tape, block seeds) — so ParallelSweep partitions the
// SAME blocks across a support::ThreadPool:
//
//   * The tape is shared read-only (Tape::evaluate_with is const and the
//     traversal touches no mutable tape state).
//   * Each worker owns a private adjoint model, so no adjoint slot is ever
//     written by two threads.
//   * The block list is the serial blocking, untouched: block i seeds
//     lanes [i*kLanes, min((i+1)*kLanes, seeds)), so every seed rides in
//     exactly the lane it rides in serially and its adjoint arithmetic is
//     bit-identical for every worker count.  The block→worker assignment
//     is a fixed contiguous split (block_range below) — deterministic,
//     never work-stealing.
//   * Harvesting happens inside the worker via a caller callback that must
//     write only worker-private accumulators; the caller merges them with
//     an order-independent reduction (mask OR / impact max) afterwards.
//
// Net effect: for any thread count the sweep produces the same passes,
// the same per-seed adjoints, and (after the caller's OR/max merge) the
// same masks, bit for bit.  Only wall time changes.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "ad/identifier.hpp"
#include "ad/tape.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace scrutiny::ad {

/// Ceiling on sweep workers.  Blocks can number in the thousands (scalar
/// sweep: one per output), and a worker is an OS thread: an unchecked
/// `--threads 500000` must not translate into a thread-spawn storm that
/// dies in std::system_error.  Far above any sane oversubscription, far
/// below any spawn limit.
inline constexpr std::size_t kMaxSweepWorkers = 256;

/// Resolves a requested sweep thread count: 0 = all hardware threads;
/// anything explicit is honored up to kMaxSweepWorkers (oversubscription
/// is allowed — it is how the invariance tests race 4 workers on 1 core
/// — but unbounded it is an outage, not a knob).
[[nodiscard]] inline std::size_t resolve_sweep_threads(
    std::size_t requested) noexcept {
  if (requested == 0) return support::ThreadPool::hardware_threads();
  return std::min(requested, kMaxSweepWorkers);
}

/// What the parallel region cost.  busy/sweep/harvest are summed across
/// workers; wall_seconds is the caller-observed span of the whole region.
struct ParallelSweepMetrics {
  std::size_t passes = 0;   ///< tape passes (== the serial block count)
  std::size_t workers = 0;  ///< workers that actually ran blocks
  double wall_seconds = 0.0;
  double busy_seconds = 0.0;     ///< Σ workers' (sweep + harvest) time
  double sweep_seconds = 0.0;    ///< Σ workers' reverse-pass time
  double harvest_seconds = 0.0;  ///< Σ workers' harvest-callback time

  /// busy / (workers × wall): 1.0 = perfect scaling, small = threads
  /// starved (few blocks) or oversubscribed (threads > cores).
  [[nodiscard]] double efficiency() const noexcept {
    const double denominator =
        static_cast<double>(workers) * wall_seconds;
    if (denominator <= 0.0) return 1.0;
    return std::min(1.0, busy_seconds / denominator);
  }
};

template <typename Model>
class ParallelSweep {
 public:
  static constexpr std::size_t kLanes = Model::kLanes;

  ParallelSweep(const Tape& tape, std::span<const Identifier> seeds)
      : tape_(&tape), seeds_(seeds) {}

  /// Serial block count: ceil(seeds / kLanes).
  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return (seeds_.size() + kLanes - 1) / kLanes;
  }

  /// Workers a sweep over these seeds can keep busy: one block is the
  /// smallest schedulable unit (blocks are never split — that would
  /// change the lane composition serial mode fixed).
  [[nodiscard]] std::size_t usable_workers(
      std::size_t requested) const noexcept {
    return std::max<std::size_t>(
        1, std::min(requested, num_blocks()));
  }

  /// Fixed contiguous block range for `worker` of `workers` (the
  /// deterministic block→worker assignment; never rebalanced at runtime).
  [[nodiscard]] std::pair<std::size_t, std::size_t> block_range(
      std::size_t worker, std::size_t workers) const noexcept {
    const std::size_t blocks = num_blocks();
    const std::size_t begin = blocks * worker / workers;
    const std::size_t end = blocks * (worker + 1) / workers;
    return {begin, end};
  }

  /// Runs the sweep on `workers` pool threads.
  ///
  ///   seed_lane(model, seed_id, lane)     — plant one output seed
  ///   harvest(worker, model, base, lanes) — fold one evaluated block
  ///       (seeds [base, base+lanes)) into WORKER-PRIVATE accumulators;
  ///       called from pool threads, must not touch shared state.
  template <typename SeedLane, typename Harvest>
  ParallelSweepMetrics run(support::ThreadPool& pool, std::size_t workers,
                           SeedLane&& seed_lane, Harvest&& harvest) const {
    ParallelSweepMetrics metrics;
    metrics.passes = num_blocks();
    metrics.workers = usable_workers(workers);
    if (metrics.passes == 0) return metrics;

    struct WorkerCost {
      double sweep_seconds = 0.0;
      double harvest_seconds = 0.0;
    };
    std::vector<WorkerCost> costs(metrics.workers);

    Timer wall_timer;
    pool.run(metrics.workers, [&](std::size_t worker) {
      const auto [block_begin, block_end] =
          block_range(worker, metrics.workers);
      Model model;
      model.resize(tape_->max_identifier());
      WorkerCost cost;
      for (std::size_t block = block_begin; block < block_end; ++block) {
        const std::size_t base = block * kLanes;
        const std::size_t lanes =
            std::min(kLanes, seeds_.size() - base);
        model.clear();
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          seed_lane(model, seeds_[base + lane], lane);
        }
        Timer pass_timer;
        tape_->evaluate_with(model);
        cost.sweep_seconds += pass_timer.seconds();
        Timer harvest_timer;
        harvest(worker, std::as_const(model), base, lanes);
        cost.harvest_seconds += harvest_timer.seconds();
      }
      costs[worker] = cost;
    });
    metrics.wall_seconds = wall_timer.seconds();

    for (const WorkerCost& cost : costs) {
      metrics.sweep_seconds += cost.sweep_seconds;
      metrics.harvest_seconds += cost.harvest_seconds;
      metrics.busy_seconds += cost.sweep_seconds + cost.harvest_seconds;
    }
    return metrics;
  }

 private:
  const Tape* tape_;
  std::span<const Identifier> seeds_;
};

}  // namespace scrutiny::ad
