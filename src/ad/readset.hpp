// Read-set (activity) tracking scalar.
//
// The paper's Discussion notes that every uncritical element it found was
// simply *never read* after the checkpoint, and wishes for an "algorithmic
// analysis rather than AD analysis".  ad::Marked<T> implements exactly that:
// each tracked value carries the index of the checkpoint element it came
// from; the moment such a value is consumed by arithmetic, comparison or an
// index computation, the element is marked "read" in the active
// ReadSetTracker.  Overwriting a state slot replaces its origin, so elements
// overwritten before any read stay unmarked — precisely "the checkpointed
// value was never consumed".
//
// Differences from derivative-based criticality (exercised in tests and the
// mode-ablation bench):
//  * a value read only inside a branch condition is READ-critical but has
//    zero derivative (AD misses it);
//  * `y += x - x` or multiplication by a structural zero reads x but the
//    derivative cancels (ReadSet conservative, AD tighter).
// On all NPB variables the two agree, matching the paper's observation.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace scrutiny::ad {

/// Collects "element i of the checkpoint state was read" marks.
class ReadSetTracker {
 public:
  explicit ReadSetTracker(std::size_t num_elements)
      : read_(num_elements, 0) {}

  void mark(std::int64_t origin) noexcept {
    if (origin >= 0 && static_cast<std::size_t>(origin) < read_.size()) {
      read_[static_cast<std::size_t>(origin)] = 1;
    }
  }

  [[nodiscard]] bool was_read(std::size_t index) const {
    SCRUTINY_REQUIRE(index < read_.size(), "read-set index out of range");
    return read_[index] != 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return read_.size(); }

  [[nodiscard]] std::size_t count_read() const noexcept {
    std::size_t n = 0;
    for (std::uint8_t r : read_) n += r;
    return n;
  }

  void clear() noexcept { std::fill(read_.begin(), read_.end(), 0); }

 private:
  std::vector<std::uint8_t> read_;
};

[[nodiscard]] ReadSetTracker* active_tracker() noexcept;
void set_active_tracker(ReadSetTracker* tracker) noexcept;

/// RAII activation, mirroring ActiveTapeGuard.
class ActiveTrackerGuard {
 public:
  explicit ActiveTrackerGuard(ReadSetTracker& tracker) noexcept
      : previous_(active_tracker()) {
    set_active_tracker(&tracker);
  }
  ~ActiveTrackerGuard() { set_active_tracker(previous_); }
  ActiveTrackerGuard(const ActiveTrackerGuard&) = delete;
  ActiveTrackerGuard& operator=(const ActiveTrackerGuard&) = delete;

 private:
  ReadSetTracker* previous_;
};

inline constexpr std::int64_t kNoOrigin = -1;

template <typename T>
class Marked {
 public:
  constexpr Marked() noexcept : value_(T{}), origin_(kNoOrigin) {}
  constexpr Marked(T value) noexcept  // NOLINT: implicit by design
      : value_(value), origin_(kNoOrigin) {}
  constexpr Marked(T value, std::int64_t origin) noexcept
      : value_(value), origin_(origin) {}

  // int literals appear throughout kernels templated on the scalar type.
  template <typename U = T>
    requires(!std::is_same_v<U, int>)
  constexpr Marked(int value) noexcept  // NOLINT: implicit by design
      : value_(static_cast<T>(value)), origin_(kNoOrigin) {}

  /// Reads the value *without* marking; analysis plumbing only.
  [[nodiscard]] constexpr T peek() const noexcept { return value_; }
  [[nodiscard]] constexpr std::int64_t origin() const noexcept {
    return origin_;
  }

  /// Reads the value as the program would: marks the origin element.
  [[nodiscard]] T value() const noexcept {
    touch();
    return value_;
  }

  void set_origin(std::int64_t origin) noexcept { origin_ = origin; }

  void touch() const noexcept {
    if (origin_ >= 0) {
      if (ReadSetTracker* t = active_tracker(); t != nullptr) {
        t->mark(origin_);
      }
    }
  }

  Marked& operator+=(const Marked& r) { return *this = *this + r; }
  Marked& operator-=(const Marked& r) { return *this = *this - r; }
  Marked& operator*=(const Marked& r) { return *this = *this * r; }
  Marked& operator/=(const Marked& r) { return *this = *this / r; }

  friend Marked operator+(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return Marked(a.value_ + b.value_);
  }
  friend Marked operator-(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return Marked(a.value_ - b.value_);
  }
  friend Marked operator*(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return Marked(a.value_ * b.value_);
  }
  friend Marked operator/(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return Marked(a.value_ / b.value_);
  }
  friend Marked operator-(const Marked& a) {
    a.touch();
    return Marked(-a.value_);
  }
  friend Marked operator+(const Marked& a) { return a; }

  // Comparisons are reads: the checkpointed value steers control flow.
  friend bool operator<(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ < b.value_;
  }
  friend bool operator>(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ > b.value_;
  }
  friend bool operator<=(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ <= b.value_;
  }
  friend bool operator>=(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ >= b.value_;
  }
  friend bool operator==(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ == b.value_;
  }
  friend bool operator!=(const Marked& a, const Marked& b) {
    a.touch(); b.touch();
    return a.value_ != b.value_;
  }

 private:
  T value_;
  std::int64_t origin_;
};

// Integer-only extras used by the IS mini-app.
template <typename T>
  requires std::is_integral_v<T>
inline Marked<T> operator%(const Marked<T>& a, const Marked<T>& b) {
  a.touch(); b.touch();
  return Marked<T>(a.peek() % b.peek());
}
template <typename T>
  requires std::is_integral_v<T>
inline Marked<T> operator>>(const Marked<T>& a, int shift) {
  a.touch();
  return Marked<T>(a.peek() >> shift);
}
template <typename T>
  requires std::is_integral_v<T>
inline Marked<T> operator<<(const Marked<T>& a, int shift) {
  a.touch();
  return Marked<T>(a.peek() << shift);
}

// Math functions used by kernels templated on the scalar type.
inline Marked<double> sqrt(const Marked<double>& a) {
  return Marked<double>(std::sqrt(a.value()));
}
inline Marked<double> exp(const Marked<double>& a) {
  return Marked<double>(std::exp(a.value()));
}
inline Marked<double> log(const Marked<double>& a) {
  return Marked<double>(std::log(a.value()));
}
inline Marked<double> sin(const Marked<double>& a) {
  return Marked<double>(std::sin(a.value()));
}
inline Marked<double> cos(const Marked<double>& a) {
  return Marked<double>(std::cos(a.value()));
}
inline Marked<double> tan(const Marked<double>& a) {
  return Marked<double>(std::tan(a.value()));
}
inline Marked<double> fabs(const Marked<double>& a) {
  return Marked<double>(std::fabs(a.value()));
}
inline Marked<double> abs(const Marked<double>& a) { return fabs(a); }
inline Marked<double> pow(const Marked<double>& a, const Marked<double>& b) {
  return Marked<double>(std::pow(a.value(), b.value()));
}
inline Marked<double> pow(const Marked<double>& a, double b) {
  return Marked<double>(std::pow(a.value(), b));
}
inline Marked<double> max(const Marked<double>& a, const Marked<double>& b) {
  a.touch();
  b.touch();
  return a.peek() >= b.peek() ? a : b;
}
inline Marked<double> min(const Marked<double>& a, const Marked<double>& b) {
  a.touch();
  b.touch();
  return a.peek() <= b.peek() ? a : b;
}
inline Marked<double> fmax(const Marked<double>& a, const Marked<double>& b) {
  return max(a, b);
}
inline Marked<double> fmin(const Marked<double>& a, const Marked<double>& b) {
  return min(a, b);
}
inline int to_int(const Marked<double>& a) noexcept {
  return static_cast<int>(a.value());
}
inline double floor(const Marked<double>& a) noexcept {
  return std::floor(a.value());
}
inline double ceil(const Marked<double>& a) noexcept {
  return std::ceil(a.value());
}

}  // namespace scrutiny::ad
