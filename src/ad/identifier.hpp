// Tape node identifiers, shared by the tape and the adjoint models.
//
// Split out of tape.hpp so the adjoint-model layer (adjoint_models.hpp)
// can be included independently of the tape itself.
#pragma once

#include <cstdint>

namespace scrutiny::ad {

/// Tape node identifier; 0 means "passive" (constant, not on the tape).
using Identifier = std::uint32_t;

inline constexpr Identifier kPassiveId = 0;

}  // namespace scrutiny::ad
