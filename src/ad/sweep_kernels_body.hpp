// Kernel body templates shared by every ISA translation unit.
//
// Included ONLY by the sweep_kernels*.cpp TUs.  Everything here lives in
// an anonymous namespace on purpose: each TU is compiled with different
// -m flags, and if these templates had external linkage the linker could
// keep, say, the AVX-512-compiled instantiation of a body the SSE2 path
// also references (comdat sections are merged by symbol name, not by
// ISA), crashing older CPUs with illegal instructions.  Internal linkage
// gives every TU its own private, correctly-flagged copy.
//
// The bodies replicate the historical per-statement semantics exactly —
// this is what makes kernels interchangeable without changing masks:
//  * statements are visited newest-first, arguments in forward order;
//  * inactive lhs (dirty flag / zero word) skips the statement;
//  * `partial == 0.0` skips the argument BEFORE any load or dirty
//    marking (a zero partial must not activate an argument);
//  * the lane update is the unfused `dst += partial * lhs` — two
//    roundings per element at every SIMD width (Pack::mul_add; the TUs
//    are additionally compiled with -ffp-contract=off so the compiler
//    cannot re-fuse it).
//
// Argument identifiers are always strictly smaller than the lhs
// identifier (the tape assigns ids in statement order), so `dst` never
// aliases the cached lhs block within a statement.
#pragma once

#include "ad/sweep_kernels.hpp"
#include "support/simd.hpp"

namespace {

/// Vertical SIMD sweep over lane blocks of stride P::kWidth * Blocks.
/// One instantiation per (pack, block-count) pair covers one runtime
/// lane stride; the dispatch switch in each TU picks the instantiation
/// matching view.stride.
template <typename P, std::size_t Blocks>
SCRUTINY_SIMD_INLINE void vector_sweep_blocks(
    const scrutiny::ad::SegmentView& segment,
    const scrutiny::ad::VectorLaneView& view) {
  using scrutiny::ad::Identifier;
  constexpr std::size_t kW = P::kWidth;
  double* const lanes = view.lanes;
  std::uint8_t* const dirty = view.dirty;
  const std::size_t stride = kW * Blocks;
  std::uint64_t stmt = segment.num_statements;
  std::uint64_t cursor = segment.num_arguments;
  for (std::uint64_t r = segment.num_runs; r-- > 0;) {
    const std::uint32_t count = segment.runs[r].statements();
    const std::uint32_t arg_count = segment.runs[r].arg_count();
    if (arg_count == 0) {  // input registrations: nothing to propagate
      stmt -= count;
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      --stmt;
      cursor -= arg_count;
      const auto lhs_id =
          static_cast<Identifier>(segment.first_statement + stmt + 1);
      if (!dirty[lhs_id]) continue;
      P lhs[Blocks];
      const double* const lhs_block = lanes + lhs_id * stride;
      for (std::size_t b = 0; b < Blocks; ++b) {
        lhs[b] = P::load(lhs_block + b * kW);
      }
      for (std::uint32_t a = 0; a < arg_count; ++a) {
        const double partial = segment.partials[cursor + a];
        if (partial == 0.0) continue;
        const Identifier arg = segment.arg_ids[cursor + a];
        double* const dst = lanes + arg * stride;
        const P factor = P::broadcast(partial);
        for (std::size_t b = 0; b < Blocks; ++b) {
          P::store(dst + b * kW,
                   P::mul_add(factor, lhs[b], P::load(dst + b * kW)));
        }
        if (!dirty[arg]) {
          dirty[arg] = 1;
          scrutiny::ad::sweep_note_touched(view, arg);
        }
      }
    }
  }
}

/// Runtime-stride scalar walk — the default case when view.stride is
/// none of the compiled-in widths (cannot happen today, but the switch
/// needs a total function).
inline void vector_sweep_any_stride(
    const scrutiny::ad::SegmentView& segment,
    const scrutiny::ad::VectorLaneView& view) {
  using scrutiny::ad::Identifier;
  double* const lanes = view.lanes;
  std::uint8_t* const dirty = view.dirty;
  const std::size_t stride = view.stride;
  std::uint64_t stmt = segment.num_statements;
  std::uint64_t cursor = segment.num_arguments;
  for (std::uint64_t r = segment.num_runs; r-- > 0;) {
    const std::uint32_t count = segment.runs[r].statements();
    const std::uint32_t arg_count = segment.runs[r].arg_count();
    if (arg_count == 0) {
      stmt -= count;
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      --stmt;
      cursor -= arg_count;
      const auto lhs_id =
          static_cast<Identifier>(segment.first_statement + stmt + 1);
      if (!dirty[lhs_id]) continue;
      const double* const lhs_block = lanes + lhs_id * stride;
      for (std::uint32_t a = 0; a < arg_count; ++a) {
        const double partial = segment.partials[cursor + a];
        if (partial == 0.0) continue;
        const Identifier arg = segment.arg_ids[cursor + a];
        double* const dst = lanes + arg * stride;
        for (std::size_t w = 0; w < stride; ++w) {
          dst[w] += partial * lhs_block[w];
        }
        if (!dirty[arg]) {
          dirty[arg] = 1;
          scrutiny::ad::sweep_note_touched(view, arg);
        }
      }
    }
  }
}

/// Bitset OR-propagation over the run encoding.  The word itself is the
/// dirty flag, and OR is exact at any width, so every table shares the
/// one baseline-compiled instantiation of this walk; what the SIMD
/// tables buy the bitset sweep is the branchless run traversal.
inline void bitset_sweep_runs(const scrutiny::ad::SegmentView& segment,
                              const scrutiny::ad::BitsetLaneView& view) {
  using scrutiny::ad::Identifier;
  std::uint64_t* const words = view.words;
  std::uint64_t stmt = segment.num_statements;
  std::uint64_t cursor = segment.num_arguments;
  for (std::uint64_t r = segment.num_runs; r-- > 0;) {
    const std::uint32_t count = segment.runs[r].statements();
    const std::uint32_t arg_count = segment.runs[r].arg_count();
    if (arg_count == 0) {
      stmt -= count;
      continue;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      --stmt;
      cursor -= arg_count;
      const auto lhs_id =
          static_cast<Identifier>(segment.first_statement + stmt + 1);
      const std::uint64_t lhs_bits = words[lhs_id];
      if (lhs_bits == 0) continue;
      for (std::uint32_t a = 0; a < arg_count; ++a) {
        if (segment.partials[cursor + a] == 0.0) continue;
        const Identifier arg = segment.arg_ids[cursor + a];
        const std::uint64_t word = words[arg];
        if (word == 0) scrutiny::ad::sweep_note_touched(view, arg);
        words[arg] = word | lhs_bits;
      }
    }
  }
}

}  // namespace
