#include "ad/tape_storage.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <utility>

#include "ckpt/file_backend.hpp"
#include "support/error.hpp"
#include "support/log.hpp"

namespace scrutiny::ad {

namespace {

/// Spilled-segment container header.  Ephemeral in-process data (the
/// storage removes its keys on destruction), so a magic + count check is
/// enough; no cross-version compatibility to carry.
struct SpillHeader {
  std::uint64_t magic = 0x5343'5453'4547'0002ull;  // "SCTSEG" v2 (kind runs)
  std::uint64_t first_statement = 0;
  std::uint64_t num_statements = 0;
  std::uint64_t num_arguments = 0;
  std::uint64_t num_runs = 0;
};

constexpr std::uint64_t kSpillMagic = 0x5343'5453'4547'0002ull;

}  // namespace

// ---------------------------------------------------------------------------
// ResidentTapeStorage
// ---------------------------------------------------------------------------

TapeStorageStats ResidentTapeStorage::stats() const {
  TapeStorageStats s;
  s.num_segments = segments_.size();
  s.resident_segments = segments_.size();
  for (const SegmentHandle& segment : segments_) {
    s.resident_bytes += segment->resident_bytes();
    s.reserved_bytes += segment->reserved_bytes();
  }
  s.resident_peak_bytes = peak_bytes_;
  return s;
}

// ---------------------------------------------------------------------------
// SpillingTapeStorage
// ---------------------------------------------------------------------------

SpillingTapeStorage::SpillingTapeStorage(Options options)
    : backend_(std::move(options.backend)),
      memory_limit_bytes_(options.memory_limit_bytes),
      key_prefix_(std::move(options.key_prefix)),
      cleanup_root_(std::move(options.cleanup_root)) {
  SCRUTINY_REQUIRE(backend_ != nullptr,
                   "spilling tape storage needs a storage backend");
  prefetch_thread_ = std::thread([this] { prefetch_loop(); });
}

SpillingTapeStorage::~SpillingTapeStorage() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_.notify_all();
  if (prefetch_thread_.joinable()) prefetch_thread_.join();
  try {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].on_backend) backend_->remove(key_for(i));
    }
    if (!cleanup_root_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(cleanup_root_, ec);
    }
  } catch (const std::exception& error) {
    log_warn("tape_storage",
             std::string("tape spill cleanup failed: ") + error.what());
  }
}

std::unique_ptr<SpillingTapeStorage>
SpillingTapeStorage::with_temp_file_backend(
    std::uint64_t memory_limit_bytes) {
  static std::atomic<std::uint64_t> counter{0};
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("scrutiny_tape_spill_" + std::to_string(::getpid()) + "_" +
       std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(root);
  Options options;
  options.backend = std::make_shared<ckpt::FileBackend>(root);
  options.memory_limit_bytes = memory_limit_bytes;
  options.cleanup_root = root;
  return std::make_unique<SpillingTapeStorage>(std::move(options));
}

std::string SpillingTapeStorage::key_for(std::size_t index) const {
  return key_prefix_ + "seg" + std::to_string(index);
}

void SpillingTapeStorage::write_segment(std::size_t index,
                                        const TapeSegment& segment) const {
  const auto writer = backend_->open_for_write(key_for(index));
  SpillHeader header;
  header.first_statement = segment.first_statement;
  header.num_statements = segment.num_statements;
  header.num_arguments = segment.num_arguments();
  header.num_runs = segment.kind_runs.size();
  writer->append(&header, sizeof(header));
  writer->append(segment.kind_runs.data(),
                 segment.kind_runs.size() * sizeof(KindRun));
  writer->append(segment.partials.data(),
                 segment.partials.size() * sizeof(double));
  writer->append(segment.arg_ids.data(),
                 segment.arg_ids.size() * sizeof(Identifier));
  writer->commit();
}

SegmentHandle SpillingTapeStorage::read_segment(std::size_t index) const {
  const auto reader = backend_->open_for_read(key_for(index));
  SpillHeader header;
  reader->read(&header, sizeof(header));
  SCRUTINY_REQUIRE(header.magic == kSpillMagic,
                   "corrupt tape spill segment: " + key_for(index));
  auto segment = std::make_shared<TapeSegment>();
  segment->first_statement = header.first_statement;
  segment->num_statements = header.num_statements;
  segment->kind_runs.resize(header.num_runs);
  segment->partials.resize(header.num_arguments);
  segment->arg_ids.resize(header.num_arguments);
  reader->read(segment->kind_runs.data(),
               segment->kind_runs.size() * sizeof(KindRun));
  reader->read(segment->partials.data(),
               segment->partials.size() * sizeof(double));
  reader->read(segment->arg_ids.data(),
               segment->arg_ids.size() * sizeof(Identifier));
  std::uint64_t run_statements = 0;
  for (const KindRun run : segment->kind_runs) {
    run_statements += run.statements();
  }
  SCRUTINY_REQUIRE(run_statements == header.num_statements,
                   "corrupt tape spill segment: " + key_for(index));
  return segment;
}

void SpillingTapeStorage::seal(SegmentHandle segment) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    Entry entry;
    entry.bytes = segment->resident_bytes();
    entry.last_use = ++use_clock_;
    entry.data = std::move(segment);
    resident_bytes_ += entry.bytes;
    resident_peak_bytes_ = std::max(resident_peak_bytes_, resident_bytes_);
    entries_.push_back(std::move(entry));
  }
  enforce_budget();
}

std::size_t SpillingTapeStorage::num_segments() const noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SpillingTapeStorage::install_locked(std::size_t index,
                                         SegmentHandle segment) const {
  Entry& entry = entries_[index];
  entry.data = std::move(segment);
  entry.loading = false;
  entry.last_use = ++use_clock_;
  resident_bytes_ += entry.bytes;
  resident_peak_bytes_ = std::max(resident_peak_bytes_, resident_bytes_);
  ++segments_reloaded_;
  loaded_.notify_all();
}

SegmentHandle SpillingTapeStorage::acquire(std::size_t index) const {
  SegmentHandle handle;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (prefetch_error_ != nullptr) {
      const std::exception_ptr error = std::exchange(prefetch_error_, nullptr);
      std::rethrow_exception(error);
    }
    SCRUTINY_REQUIRE(index < entries_.size(),
                     "tape segment index out of range");
    for (;;) {
      Entry& entry = entries_[index];
      if (entry.data != nullptr) {
        entry.last_use = ++use_clock_;
        handle = entry.data;
        break;
      }
      if (entry.loading) {
        // Another worker (or the prefetch thread) is already reading this
        // segment from the backend: share that load instead of doubling it.
        loaded_.wait(lock);
        continue;
      }
      entry.loading = true;
      lock.unlock();
      SegmentHandle segment;
      try {
        segment = read_segment(index);
      } catch (...) {
        lock.lock();
        entries_[index].loading = false;
        loaded_.notify_all();
        throw;
      }
      lock.lock();
      install_locked(index, std::move(segment));
      handle = entries_[index].data;
      break;
    }
  }
  enforce_budget();
  return handle;
}

void SpillingTapeStorage::prefetch(std::size_t index) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (index >= entries_.size()) return;
    Entry& entry = entries_[index];
    if (entry.data != nullptr || entry.loading || entry.queued) return;
    entry.queued = true;
    queue_.push_back(index);
  }
  work_.notify_one();
}

void SpillingTapeStorage::prefetch_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (stopping_) return;
    const std::size_t index = queue_.front();
    queue_.pop_front();
    Entry& entry = entries_[index];
    entry.queued = false;
    if (entry.data != nullptr || entry.loading) continue;
    entry.loading = true;
    lock.unlock();
    SegmentHandle segment;
    std::exception_ptr error;
    try {
      segment = read_segment(index);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error != nullptr) {
      // Surface the failure at the next acquire(); the entry stays
      // evicted so a synchronous retry is still possible.
      entries_[index].loading = false;
      prefetch_error_ = error;
      loaded_.notify_all();
      continue;
    }
    install_locked(index, std::move(segment));
    lock.unlock();
    enforce_budget();
    lock.lock();
  }
}

void SpillingTapeStorage::enforce_budget() const {
  if (memory_limit_bytes_ == 0) return;
  for (;;) {
    SegmentHandle victim;
    std::size_t victim_index = 0;
    bool must_write = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (resident_bytes_ <= memory_limit_bytes_) return;
      std::uint64_t oldest_use = 0;
      bool found = false;
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry& entry = entries_[i];
        // Evictable: cached, not mid-I/O, and not pinned by a sweep
        // worker (the cache's reference is the only one).
        if (entry.data == nullptr || entry.loading || entry.spilling) {
          continue;
        }
        if (entry.data.use_count() > 1) continue;
        if (!found || entry.last_use < oldest_use) {
          oldest_use = entry.last_use;
          victim_index = i;
          found = true;
        }
      }
      if (!found) return;  // everything pinned: budget is advisory
      Entry& entry = entries_[victim_index];
      entry.spilling = true;
      victim = entry.data;
      must_write = !entry.on_backend;
    }
    // Immutable data, backend writes are thread-safe: spill outside the
    // lock so recording/sweeping is never blocked on I/O.
    if (must_write) write_segment(victim_index, *victim);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      Entry& entry = entries_[victim_index];
      if (must_write) {
        entry.on_backend = true;
        ++segments_spilled_;
        spilled_bytes_ += entry.bytes;
      }
      entry.spilling = false;
      entry.data.reset();
      resident_bytes_ -= entry.bytes;
    }
  }
}

void SpillingTapeStorage::clear() {
  std::unique_lock<std::mutex> lock(mutex_);
  // seal/clear are recording-thread-only, but the prefetch thread may
  // still be mid-load from an earlier sweep: wait it out.
  loaded_.wait(lock, [this] {
    for (const Entry& entry : entries_) {
      if (entry.loading || entry.spilling) return false;
    }
    return true;
  });
  queue_.clear();
  std::vector<std::size_t> spilled_keys;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].on_backend) spilled_keys.push_back(i);
  }
  entries_.clear();
  resident_bytes_ = 0;
  resident_peak_bytes_ = 0;
  segments_spilled_ = 0;
  segments_reloaded_ = 0;
  spilled_bytes_ = 0;
  prefetch_error_ = nullptr;
  lock.unlock();
  for (const std::size_t index : spilled_keys) {
    backend_->remove(key_for(index));
  }
}

TapeStorageStats SpillingTapeStorage::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  TapeStorageStats s;
  s.num_segments = entries_.size();
  for (const Entry& entry : entries_) {
    if (entry.data != nullptr) {
      ++s.resident_segments;
      s.reserved_bytes += entry.data->reserved_bytes();
    }
  }
  s.resident_bytes = resident_bytes_;
  s.resident_peak_bytes = resident_peak_bytes_;
  s.segments_spilled = segments_spilled_;
  s.segments_reloaded = segments_reloaded_;
  s.spilled_bytes = spilled_bytes_;
  return s;
}

}  // namespace scrutiny::ad
