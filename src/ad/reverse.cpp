#include "ad/reverse.hpp"

#include <ostream>

namespace scrutiny::ad {

std::ostream& operator<<(std::ostream& os, const Real& a) {
  return os << a.value();
}

}  // namespace scrutiny::ad
