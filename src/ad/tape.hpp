// Linear statement tape for reverse-mode automatic differentiation.
//
// Design (CoDiPack-style "Jacobi tape"):
//  * Every active value carries an Identifier. Identifier 0 is the passive
//    id: constants and inactive values.
//  * Identifiers are assigned sequentially: statement k produces the value
//    with id k+1.  Registered inputs are empty statements (no arguments), so
//    the tape never stores left-hand sides explicitly.
//  * Each statement stores its argument list as (partial derivative, id)
//    pairs; passive arguments are dropped at record time.
//  * The reverse sweep walks statements backwards, propagating
//    adjoint(lhs) * partial into each argument's adjoint slot.
//
// Recording and evaluation are decoupled: evaluate_with(Model&) runs the
// reverse traversal against any adjoint model (scalar, vector-lane, or
// dependency-bitset — see ad/adjoint_models.hpp), so one recorded tape can
// be swept once for many outputs.  The scalar convenience API
// (set_adjoint / evaluate / adjoint / clear_adjoints) is a thin wrapper
// over a built-in ScalarAdjoints model.
//
// The tape is explicitly activated per analysis (RAII ActiveTapeGuard); AD
// scalars consult the thread-local active tape, so code templated on the
// scalar type records itself with zero changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ad/adjoint_models.hpp"
#include "ad/identifier.hpp"
#include "support/error.hpp"

namespace scrutiny::ad {

/// Size/memory counters used by reports and the perf benches.
struct TapeStats {
  std::uint64_t num_statements = 0;
  std::uint64_t num_arguments = 0;
  std::uint64_t num_inputs = 0;
  std::uint64_t memory_bytes = 0;
};

class Tape {
 public:
  Tape() = default;

  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- recording -----------------------------------------------------

  /// Pre-sizes internal arrays for roughly `statements` statements with
  /// `args_per_statement` average arguments.  Purely an optimization.
  void reserve(std::uint64_t statements, double args_per_statement = 2.0);

  void begin_recording() noexcept { recording_ = true; }
  void end_recording() noexcept { recording_ = false; }
  [[nodiscard]] bool is_recording() const noexcept { return recording_; }

  /// Registers an independent input and returns its identifier.
  Identifier register_input();

  /// Records a statement with up to `n` active arguments.  Passive
  /// arguments (id == 0) must be filtered by the caller (the scalar type
  /// does this).  Returns the identifier of the produced value.
  Identifier push_statement(std::span<const double> partials,
                            std::span<const Identifier> ids);

  /// Fast paths used by the scalar operators.
  Identifier push1(double partial, Identifier id);
  Identifier push2(double p0, Identifier id0, double p1, Identifier id1);

  // ---- adjoint evaluation ---------------------------------------------

  /// Reverse traversal against an arbitrary adjoint model (see
  /// ad/adjoint_models.hpp for the hook contract).  The model is grown to
  /// cover every identifier first; seeds set before the call are kept.
  template <typename Model>
  void evaluate_with(Model& model) const {
    model.resize(arg_ends_.size());
    const std::size_t n = arg_ends_.size();
    for (std::size_t k = n; k-- > 0;) {
      const auto lhs_id = static_cast<Identifier>(k + 1);
      if (!model.active(lhs_id)) continue;
      const auto lhs = model.load(lhs_id);
      const std::uint64_t begin = k == 0 ? 0 : arg_ends_[k - 1];
      const std::uint64_t end = arg_ends_[k];
      for (std::uint64_t a = begin; a < end; ++a) {
        model.accumulate(arg_ids_[a], partials_[a], lhs);
      }
    }
  }

  /// Sets the adjoint of `id` (typically 1.0 on an output) in the built-in
  /// scalar model.
  void set_adjoint(Identifier id, double value);

  [[nodiscard]] double adjoint(Identifier id) const;

  /// Reverse sweep over the whole tape, accumulating the built-in scalar
  /// adjoints.
  void evaluate();

  /// Zeroes all adjoints (keeps the recording).  Sparse: costs O(slots
  /// touched since the last clear), not O(tape).
  void clear_adjoints();

  /// Drops the recording and all adjoints; identifiers restart at 1.
  void reset();

  // ---- introspection ---------------------------------------------------

  [[nodiscard]] TapeStats stats() const noexcept;

  [[nodiscard]] std::uint64_t num_statements() const noexcept {
    return arg_ends_.size();
  }

  /// Highest identifier handed out so far.
  [[nodiscard]] Identifier max_identifier() const noexcept {
    return static_cast<Identifier>(arg_ends_.size());
  }

 private:
  // Statement k covers argument range [arg_ends_[k-1], arg_ends_[k])
  // (with arg_ends_[-1] == 0) and defines identifier k+1.
  std::vector<std::uint64_t> arg_ends_;
  std::vector<double> partials_;
  std::vector<Identifier> arg_ids_;
  ScalarAdjoints adjoints_;  // backs the scalar convenience API
  std::uint64_t num_inputs_ = 0;
  bool recording_ = false;
};

/// Thread-local active tape used by ad::Real operators.
[[nodiscard]] Tape* active_tape() noexcept;
void set_active_tape(Tape* tape) noexcept;

/// RAII: installs `tape` as the active tape and starts recording;
/// restores the previous tape (and stops recording) on destruction.
class ActiveTapeGuard {
 public:
  explicit ActiveTapeGuard(Tape& tape) noexcept
      : previous_(active_tape()), tape_(&tape) {
    set_active_tape(tape_);
    tape_->begin_recording();
  }
  ~ActiveTapeGuard() {
    tape_->end_recording();
    set_active_tape(previous_);
  }
  ActiveTapeGuard(const ActiveTapeGuard&) = delete;
  ActiveTapeGuard& operator=(const ActiveTapeGuard&) = delete;

 private:
  Tape* previous_;
  Tape* tape_;
};

}  // namespace scrutiny::ad
