// Linear statement tape for reverse-mode automatic differentiation.
//
// Design (CoDiPack-style "Jacobi tape"):
//  * Every active value carries an Identifier. Identifier 0 is the passive
//    id: constants and inactive values.
//  * Identifiers are assigned sequentially: statement k produces the value
//    with id k+1.  Registered inputs are empty statements (no arguments), so
//    the tape never stores left-hand sides explicitly.
//  * Each statement stores its argument list as (partial derivative, id)
//    pairs; passive arguments are dropped at record time.
//  * The reverse sweep walks statements backwards, propagating
//    adjoint(lhs) * partial into each argument's adjoint slot.
//
// Storage is segmented: statements are recorded into the in-tape "active"
// TapeSegment; when a fixed statement capacity is configured and reached,
// the segment is sealed (frozen) into a TapeStorage (see tape_storage.hpp)
// and recording continues in a fresh segment.  The default configuration
// has an unbounded active segment — nothing is ever sealed, storage is
// never even allocated, and recording/sweeping is exactly the historical
// three-monolithic-vector path.  With a SpillingTapeStorage, sealed cold
// segments move out of core through a ckpt::StorageBackend and are
// reloaded (prefetched one segment ahead) during the backward sweep.
//
// Segment boundaries depend only on the statement count, never on values
// or memory pressure, so the per-statement evaluation order — and
// therefore every mask, impact and pass count — is bit-identical across
// all segment sizes and memory limits.
//
// Recording and evaluation are decoupled: evaluate_with(Model&) runs the
// reverse traversal against any adjoint model (scalar, vector-lane, or
// dependency-bitset — see ad/adjoint_models.hpp), so one recorded tape can
// be swept once for many outputs.  The scalar convenience API
// (set_adjoint / evaluate / adjoint / clear_adjoints) is a thin wrapper
// over a built-in ScalarAdjoints model.
//
// The tape is explicitly activated per analysis (RAII ActiveTapeGuard); AD
// scalars consult the thread-local active tape, so code templated on the
// scalar type records itself with zero changes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "ad/adjoint_models.hpp"
#include "ad/identifier.hpp"
#include "ad/sweep_kernels.hpp"
#include "ad/tape_storage.hpp"
#include "support/error.hpp"

namespace scrutiny::ad {

/// Size/memory counters used by reports and the perf benches.
///
/// memory_bytes is the historical capacity-based figure and the one
/// persisted in .scmask artifacts; the segment/spill counters below it are
/// in-process diagnostics and deliberately NOT persisted (same policy as
/// AnalysisResult::threads).
struct TapeStats {
  std::uint64_t num_statements = 0;
  std::uint64_t num_arguments = 0;
  std::uint64_t num_inputs = 0;
  std::uint64_t memory_bytes = 0;  ///< reserved (allocated) bytes
  // -- not persisted ----------------------------------------------------
  std::uint64_t resident_bytes = 0;       ///< live in-RAM bytes right now
  std::uint64_t resident_peak_bytes = 0;  ///< high-water live bytes
  std::uint64_t num_segments = 0;         ///< sealed segments + active
  std::uint64_t segments_spilled = 0;     ///< eviction writes to backend
  std::uint64_t segments_reloaded = 0;    ///< reads back during sweeps
  std::uint64_t spilled_bytes = 0;        ///< cumulative bytes written
};

/// Construction-time configuration.  The default (capacity 0, no storage)
/// is the unbounded resident tape.
struct TapeOptions {
  /// Statements per sealed segment; 0 = single unbounded segment (nothing
  /// is ever sealed).
  std::uint64_t segment_capacity = 0;
  /// Where sealed segments go.  Null + nonzero capacity defaults to a
  /// ResidentTapeStorage.
  std::unique_ptr<TapeStorage> storage;
  /// Sweep kernel table for the vector/bitset models.  Null = the
  /// runtime-dispatched default (native ISA unless
  /// SCRUTINY_FORCE_SCALAR_KERNELS pins the scalar fallback).
  const SweepKernelTable* kernels = nullptr;
};

/// Picks a segment capacity (in statements) so roughly 8 segments fit a
/// given byte budget, assuming the measured ~32 bytes/statement of the NPB
/// suite.  Clamped to [1 Ki, 1 Mi] statements.
[[nodiscard]] std::uint64_t segment_capacity_for_limit(
    std::uint64_t memory_limit_bytes) noexcept;

class Tape {
 public:
  Tape() = default;
  explicit Tape(TapeOptions options);

  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // ---- recording -----------------------------------------------------

  /// Pre-sizes internal arrays for roughly `statements` statements with
  /// `args_per_statement` average arguments.  Purely an optimization (a
  /// segmented tape clamps the grant to one segment's worth).  Throws
  /// ScrutinyError when the request exceeds the identifier space or the
  /// per-statement argument bound, instead of dying in bad_alloc later.
  void reserve(std::uint64_t statements, double args_per_statement = 2.0);

  void begin_recording() noexcept { recording_ = true; }
  void end_recording() noexcept { recording_ = false; }
  [[nodiscard]] bool is_recording() const noexcept { return recording_; }

  /// Registers an independent input and returns its identifier.
  Identifier register_input();

  /// Records a statement with up to `n` active arguments.  Passive
  /// arguments (id == 0) must be filtered by the caller (the scalar type
  /// does this).  Returns the identifier of the produced value.
  Identifier push_statement(std::span<const double> partials,
                            std::span<const Identifier> ids);

  /// Fast paths used by the scalar operators.
  Identifier push1(double partial, Identifier id);
  Identifier push2(double p0, Identifier id0, double p1, Identifier id1);

  // ---- adjoint evaluation ---------------------------------------------

  /// Reverse traversal against an arbitrary adjoint model (see
  /// ad/adjoint_models.hpp for the hook contract).  The model is grown to
  /// cover every identifier first; seeds set before the call are kept.
  ///
  /// Segments are swept newest-first (active segment, then sealed
  /// segments backwards); within a segment the hot loop runs over raw
  /// per-segment arrays — no per-statement indirection.  While segment s
  /// is being swept, segment s-1 is prefetched, so a spilling storage
  /// overlaps its reload I/O with adjoint accumulation.  Thread-safe
  /// against concurrent evaluate_with calls (ParallelSweep workers):
  /// acquire() pins segments and shares in-flight loads.
  template <typename Model>
  void evaluate_with(Model& model) const {
    model.resize(num_statements());
    sweep_segment(model, active_);
    if (storage_ != nullptr) {
      for (std::size_t s = storage_->num_segments(); s-- > 0;) {
        if (s > 0) storage_->prefetch(s - 1);
        const SegmentHandle segment = storage_->acquire(s);
        sweep_segment(model, *segment);
      }
    }
  }

  /// Sets the adjoint of `id` (typically 1.0 on an output) in the built-in
  /// scalar model.
  void set_adjoint(Identifier id, double value);

  [[nodiscard]] double adjoint(Identifier id) const;

  /// Reverse sweep over the whole tape, accumulating the built-in scalar
  /// adjoints.
  void evaluate();

  /// Zeroes all adjoints (keeps the recording).  Sparse: costs O(slots
  /// touched since the last clear), not O(tape).
  void clear_adjoints();

  /// Drops the recording, all adjoints, and every sealed/spilled segment;
  /// identifiers restart at 1.  The storage configuration (segment
  /// capacity, spill backend) survives, so one Tape can be reused across
  /// programs in a session.
  void reset();

  // ---- introspection ---------------------------------------------------

  [[nodiscard]] TapeStats stats() const noexcept;

  [[nodiscard]] std::uint64_t num_statements() const noexcept {
    return sealed_statements_ + active_.num_statements;
  }

  /// Highest identifier handed out so far.
  [[nodiscard]] Identifier max_identifier() const noexcept {
    return static_cast<Identifier>(num_statements());
  }

  /// Statements per sealed segment (0 = unbounded single segment).
  [[nodiscard]] std::uint64_t segment_capacity() const noexcept {
    return segment_capacity_;
  }

  /// Sealed segments handed to storage so far (excludes the active one).
  [[nodiscard]] std::size_t num_sealed_segments() const noexcept {
    return storage_ == nullptr ? 0 : storage_->num_segments();
  }

  /// Diagnostic storage name ("resident", "spill(file)", ...).
  [[nodiscard]] std::string storage_name() const {
    return storage_ == nullptr ? "resident" : storage_->name();
  }

  /// Name of the sweep kernel table this tape dispatches to ("scalar",
  /// "sse2", "avx2", "avx512", "neon").
  [[nodiscard]] const char* kernel_name() const noexcept {
    return kernels_->name;
  }

 private:
  // One segment's backward sweep.  The built-in vector/bitset models go
  // through the runtime-dispatched SIMD kernel table over POD views;
  // every other model (scalar, external test models) walks the same run
  // encoding generically through the model hooks.  All paths visit
  // statements and arguments in the identical order, so the choice is
  // invisible in the results.
  template <typename Model>
  void sweep_segment(Model& model, const TapeSegment& segment) const {
    if constexpr (std::is_same_v<Model, VectorAdjoints>) {
      kernels_->vector_sweep(segment.view(), model.lane_view());
    } else if constexpr (std::is_same_v<Model, BitsetAdjoints>) {
      kernels_->bitset_sweep(segment.view(), model.lane_view());
    } else {
      generic_sweep_segment(model, segment);
    }
  }

  // Statement k of the segment defines identifier first_statement + k +
  // 1; its argument span is recovered by walking kind runs backwards and
  // subtracting each statement's arg count from a running cursor.
  template <typename Model>
  static void generic_sweep_segment(Model& model,
                                    const TapeSegment& segment) {
    const double* const partials = segment.partials.data();
    const Identifier* const ids = segment.arg_ids.data();
    const std::uint64_t base = segment.first_statement;
    std::uint64_t stmt = segment.num_statements;
    std::uint64_t cursor = segment.num_arguments();
    for (std::uint64_t r = segment.kind_runs.size(); r-- > 0;) {
      const std::uint32_t count = segment.kind_runs[r].statements();
      const std::uint32_t arg_count = segment.kind_runs[r].arg_count();
      if (arg_count == 0) {  // input registrations: nothing to propagate
        stmt -= count;
        continue;
      }
      for (std::uint32_t i = 0; i < count; ++i) {
        --stmt;
        cursor -= arg_count;
        const auto lhs_id = static_cast<Identifier>(base + stmt + 1);
        if (!model.active(lhs_id)) continue;
        const auto lhs = model.load(lhs_id);
        for (std::uint32_t a = 0; a < arg_count; ++a) {
          model.accumulate(ids[cursor + a], partials[cursor + a], lhs);
        }
      }
    }
  }

  /// Closes the statement just pushed into active_: assigns its
  /// identifier and seals the segment when it hit capacity.
  Identifier finish_statement() {
    const std::uint64_t args =
        active_.partials.size() - statement_args_mark_;
    SCRUTINY_REQUIRE(args <= 255,
                     "statement exceeds 255 active arguments");
    active_.append_statement(static_cast<std::uint32_t>(args));
    statement_args_mark_ = active_.partials.size();
    const std::uint64_t total = num_statements();
    SCRUTINY_REQUIRE(total < 0xFFFFFFFFull, "tape identifier overflow");
    if (segment_capacity_ != 0 &&
        active_.num_statements >= segment_capacity_) {
      seal_active();
    }
    return static_cast<Identifier>(total);
  }

  void seal_active();

  // The segment currently being recorded.  active_.first_statement ==
  // sealed_statements_ at all times.
  TapeSegment active_;
  std::unique_ptr<TapeStorage> storage_;  // null until the first seal
  const SweepKernelTable* kernels_ = &default_kernel_table();
  // Argument-array size at the last statement boundary; the delta at
  // finish_statement() is the closing statement's argument count.
  std::uint64_t statement_args_mark_ = 0;
  std::uint64_t segment_capacity_ = 0;
  std::uint64_t sealed_statements_ = 0;
  std::uint64_t sealed_arguments_ = 0;
  double reserve_args_per_statement_ = 2.0;  // re-reserve hint after seals
  ScalarAdjoints adjoints_;  // backs the scalar convenience API
  std::uint64_t num_inputs_ = 0;
  bool recording_ = false;
};

/// Thread-local active tape used by ad::Real operators.
[[nodiscard]] Tape* active_tape() noexcept;
void set_active_tape(Tape* tape) noexcept;

/// RAII: installs `tape` as the active tape and starts recording;
/// restores the previous tape (and stops recording) on destruction.
class ActiveTapeGuard {
 public:
  explicit ActiveTapeGuard(Tape& tape) noexcept
      : previous_(active_tape()), tape_(&tape) {
    set_active_tape(tape_);
    tape_->begin_recording();
  }
  ~ActiveTapeGuard() {
    tape_->end_recording();
    set_active_tape(previous_);
  }
  ActiveTapeGuard(const ActiveTapeGuard&) = delete;
  ActiveTapeGuard& operator=(const ActiveTapeGuard&) = delete;

 private:
  Tape* previous_;
  Tape* tape_;
};

}  // namespace scrutiny::ad
