// Reverse-mode AD scalar.
//
// ad::Real behaves like double but records every arithmetic operation on the
// thread-local active tape (see tape.hpp).  Code templated on the scalar
// type runs unchanged; comparisons operate on primal values, so control flow
// is fixed at the recorded trajectory — the standard operator-overloading AD
// semantics, identical in effect to what Enzyme differentiates for a fixed
// input.
//
// Copying a Real shares its tape identifier: the copy denotes the same value
// node.  Assigning a new expression to a variable simply replaces the
// identifier (the tape is single-assignment), so overwritten checkpoint
// elements naturally stop receiving adjoints — exactly the semantics the
// criticality analysis needs.
#pragma once

#include <cmath>
#include <iosfwd>

#include "ad/tape.hpp"

namespace scrutiny::ad {

class Real {
 public:
  constexpr Real() noexcept : value_(0.0), id_(kPassiveId) {}
  constexpr Real(double value) noexcept  // NOLINT: implicit by design
      : value_(value), id_(kPassiveId) {}
  constexpr Real(int value) noexcept  // NOLINT: implicit by design
      : value_(static_cast<double>(value)), id_(kPassiveId) {}

  constexpr Real(double value, Identifier id) noexcept
      : value_(value), id_(id) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }
  [[nodiscard]] constexpr Identifier id() const noexcept { return id_; }
  [[nodiscard]] constexpr bool is_active() const noexcept {
    return id_ != kPassiveId;
  }

  /// Registers this value as an independent tape input.
  void register_input() {
    Tape* tape = active_tape();
    SCRUTINY_REQUIRE(tape != nullptr, "register_input without an active tape");
    id_ = tape->register_input();
  }

  /// Adjoint accumulated by the last Tape::evaluate() call.
  [[nodiscard]] double gradient() const {
    const Tape* tape = active_tape();
    return tape == nullptr ? 0.0 : tape->adjoint(id_);
  }

  Real& operator+=(const Real& rhs);
  Real& operator-=(const Real& rhs);
  Real& operator*=(const Real& rhs);
  Real& operator/=(const Real& rhs);

 private:
  double value_;
  Identifier id_;
};

namespace detail {

inline Real unary(double value, double partial, const Real& a) {
  Tape* tape = active_tape();
  if (tape != nullptr && tape->is_recording() && a.is_active()) {
    return Real(value, tape->push1(partial, a.id()));
  }
  return Real(value);
}

inline Real binary(double value, double pa, const Real& a, double pb,
                   const Real& b) {
  Tape* tape = active_tape();
  if (tape != nullptr && tape->is_recording() &&
      (a.is_active() || b.is_active())) {
    return Real(value, tape->push2(pa, a.id(), pb, b.id()));
  }
  return Real(value);
}

}  // namespace detail

// ---- arithmetic -------------------------------------------------------

inline Real operator+(const Real& a, const Real& b) {
  return detail::binary(a.value() + b.value(), 1.0, a, 1.0, b);
}
inline Real operator-(const Real& a, const Real& b) {
  return detail::binary(a.value() - b.value(), 1.0, a, -1.0, b);
}
inline Real operator*(const Real& a, const Real& b) {
  return detail::binary(a.value() * b.value(), b.value(), a, a.value(), b);
}
inline Real operator/(const Real& a, const Real& b) {
  // The primal value uses the same single rounding as plain double
  // division — the instrumented program must be bit-identical to the
  // production program; only the partials use the reciprocal.
  const double inv = 1.0 / b.value();
  return detail::binary(a.value() / b.value(), inv, a,
                        -a.value() * inv * inv, b);
}

inline Real operator-(const Real& a) {
  return detail::unary(-a.value(), -1.0, a);
}
inline Real operator+(const Real& a) { return a; }

inline Real& Real::operator+=(const Real& rhs) { return *this = *this + rhs; }
inline Real& Real::operator-=(const Real& rhs) { return *this = *this - rhs; }
inline Real& Real::operator*=(const Real& rhs) { return *this = *this * rhs; }
inline Real& Real::operator/=(const Real& rhs) { return *this = *this / rhs; }

// Mixed double/Real overloads resolve through the implicit constructor; the
// explicit forms below avoid creating passive temporaries in hot loops.
inline Real operator+(const Real& a, double b) {
  return detail::unary(a.value() + b, 1.0, a);
}
inline Real operator+(double a, const Real& b) {
  return detail::unary(a + b.value(), 1.0, b);
}
inline Real operator-(const Real& a, double b) {
  return detail::unary(a.value() - b, 1.0, a);
}
inline Real operator-(double a, const Real& b) {
  return detail::unary(a - b.value(), -1.0, b);
}
inline Real operator*(const Real& a, double b) {
  return detail::unary(a.value() * b, b, a);
}
inline Real operator*(double a, const Real& b) {
  return detail::unary(a * b.value(), a, b);
}
inline Real operator/(const Real& a, double b) {
  return detail::unary(a.value() / b, 1.0 / b, a);
}
inline Real operator/(double a, const Real& b) {
  const double inv = 1.0 / b.value();
  return detail::unary(a / b.value(), -a * inv * inv, b);
}

// ---- comparisons (primal values) --------------------------------------

inline bool operator<(const Real& a, const Real& b) {
  return a.value() < b.value();
}
inline bool operator>(const Real& a, const Real& b) {
  return a.value() > b.value();
}
inline bool operator<=(const Real& a, const Real& b) {
  return a.value() <= b.value();
}
inline bool operator>=(const Real& a, const Real& b) {
  return a.value() >= b.value();
}
inline bool operator==(const Real& a, const Real& b) {
  return a.value() == b.value();
}
inline bool operator!=(const Real& a, const Real& b) {
  return a.value() != b.value();
}

// ---- math functions ----------------------------------------------------

inline Real sqrt(const Real& a) {
  const double r = std::sqrt(a.value());
  // d/dx sqrt(x) = 1/(2 sqrt(x)); at 0 clamp to 0 (subgradient choice).
  const double partial = r > 0.0 ? 0.5 / r : 0.0;
  return detail::unary(r, partial, a);
}

inline Real exp(const Real& a) {
  const double r = std::exp(a.value());
  return detail::unary(r, r, a);
}

inline Real log(const Real& a) {
  return detail::unary(std::log(a.value()), 1.0 / a.value(), a);
}

inline Real log10(const Real& a) {
  return detail::unary(std::log10(a.value()),
                       1.0 / (a.value() * 2.302585092994046), a);
}

inline Real sin(const Real& a) {
  return detail::unary(std::sin(a.value()), std::cos(a.value()), a);
}

inline Real cos(const Real& a) {
  return detail::unary(std::cos(a.value()), -std::sin(a.value()), a);
}

inline Real tan(const Real& a) {
  const double t = std::tan(a.value());
  return detail::unary(t, 1.0 + t * t, a);
}

inline Real asin(const Real& a) {
  return detail::unary(std::asin(a.value()),
                       1.0 / std::sqrt(1.0 - a.value() * a.value()), a);
}

inline Real acos(const Real& a) {
  return detail::unary(std::acos(a.value()),
                       -1.0 / std::sqrt(1.0 - a.value() * a.value()), a);
}

inline Real atan(const Real& a) {
  return detail::unary(std::atan(a.value()),
                       1.0 / (1.0 + a.value() * a.value()), a);
}

inline Real atan2(const Real& y, const Real& x) {
  const double denom = x.value() * x.value() + y.value() * y.value();
  return detail::binary(std::atan2(y.value(), x.value()),
                        x.value() / denom, y, -y.value() / denom, x);
}

inline Real sinh(const Real& a) {
  return detail::unary(std::sinh(a.value()), std::cosh(a.value()), a);
}

inline Real cosh(const Real& a) {
  return detail::unary(std::cosh(a.value()), std::sinh(a.value()), a);
}

inline Real tanh(const Real& a) {
  const double t = std::tanh(a.value());
  return detail::unary(t, 1.0 - t * t, a);
}

inline Real fabs(const Real& a) {
  const double sign = a.value() >= 0.0 ? 1.0 : -1.0;
  return detail::unary(std::fabs(a.value()), sign, a);
}
inline Real abs(const Real& a) { return fabs(a); }

inline Real pow(const Real& a, const Real& b) {
  const double r = std::pow(a.value(), b.value());
  const double pa = b.value() * std::pow(a.value(), b.value() - 1.0);
  const double pb = a.value() > 0.0 ? r * std::log(a.value()) : 0.0;
  return detail::binary(r, pa, a, pb, b);
}

inline Real pow(const Real& a, double b) {
  const double r = std::pow(a.value(), b);
  return detail::unary(r, b * std::pow(a.value(), b - 1.0), a);
}

inline Real pow(double a, const Real& b) {
  const double r = std::pow(a, b.value());
  const double pb = a > 0.0 ? r * std::log(a) : 0.0;
  return detail::unary(r, pb, b);
}

inline Real max(const Real& a, const Real& b) {
  return a.value() >= b.value() ? a : b;
}
inline Real min(const Real& a, const Real& b) {
  return a.value() <= b.value() ? a : b;
}
inline Real fmax(const Real& a, const Real& b) { return max(a, b); }
inline Real fmin(const Real& a, const Real& b) { return min(a, b); }

/// Truncation to integer; breaks the derivative chain (piecewise-constant),
/// mirroring how index computations behave under Enzyme.
inline int to_int(const Real& a) noexcept {
  return static_cast<int>(a.value());
}
inline double floor(const Real& a) noexcept { return std::floor(a.value()); }
inline double ceil(const Real& a) noexcept { return std::ceil(a.value()); }

std::ostream& operator<<(std::ostream& os, const Real& a);

}  // namespace scrutiny::ad
