// Baseline kernel TU: compiled with the project's default flags only, so
// everything here runs on any CPU the binary targets.  Provides the
// scalar + SSE2/NEON tables, the touched-list helpers, and the runtime
// table resolution.  The AVX2/AVX-512 entry points live in their own
// TUs (sweep_kernels_avx2.cpp / _avx512.cpp) compiled with matching -m
// flags and are only ever called after __builtin_cpu_supports says the
// ISA exists.
#include "ad/sweep_kernels.hpp"

#include "ad/adjoint_models.hpp"
#include "ad/sweep_kernels_body.hpp"
#include "support/simd.hpp"

namespace scrutiny::ad {

void sweep_note_touched(const VectorLaneView& view, Identifier id) {
  static_cast<VectorAdjoints*>(view.model)->note_touched(id);
}

void sweep_note_touched(const BitsetLaneView& view, Identifier id) {
  static_cast<BitsetAdjoints*>(view.model)->note_touched(id);
}

#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SCRUTINY_HAVE_X86_KERNEL_TUS 1
// Defined in sweep_kernels_avx2.cpp / sweep_kernels_avx512.cpp.
void vector_sweep_avx2(const SegmentView& segment,
                       const VectorLaneView& view);
void vector_sweep_avx512(const SegmentView& segment,
                         const VectorLaneView& view);
#endif

namespace {

void vector_sweep_scalar(const SegmentView& segment,
                         const VectorLaneView& view) {
  switch (view.stride) {
    case 8: vector_sweep_blocks<support::PackScalarF64, 8>(segment, view);
      break;
    case 4: vector_sweep_blocks<support::PackScalarF64, 4>(segment, view);
      break;
    case 2: vector_sweep_blocks<support::PackScalarF64, 2>(segment, view);
      break;
    case 1: vector_sweep_blocks<support::PackScalarF64, 1>(segment, view);
      break;
    default: vector_sweep_any_stride(segment, view); break;
  }
}

#if defined(__SSE2__)
void vector_sweep_sse2(const SegmentView& segment,
                       const VectorLaneView& view) {
  switch (view.stride) {
    case 8: vector_sweep_blocks<support::PackSse2F64, 4>(segment, view);
      break;
    case 4: vector_sweep_blocks<support::PackSse2F64, 2>(segment, view);
      break;
    case 2: vector_sweep_blocks<support::PackSse2F64, 1>(segment, view);
      break;
    case 1: vector_sweep_blocks<support::PackScalarF64, 1>(segment, view);
      break;
    default: vector_sweep_any_stride(segment, view); break;
  }
}
#endif

#if defined(__aarch64__)
void vector_sweep_neon(const SegmentView& segment,
                       const VectorLaneView& view) {
  switch (view.stride) {
    case 8: vector_sweep_blocks<support::PackNeonF64, 4>(segment, view);
      break;
    case 4: vector_sweep_blocks<support::PackNeonF64, 2>(segment, view);
      break;
    case 2: vector_sweep_blocks<support::PackNeonF64, 1>(segment, view);
      break;
    case 1: vector_sweep_blocks<support::PackScalarF64, 1>(segment, view);
      break;
    default: vector_sweep_any_stride(segment, view); break;
  }
}
#endif

}  // namespace

const SweepKernelTable& scalar_kernel_table() {
  static const SweepKernelTable table{"scalar", &vector_sweep_scalar,
                                      &bitset_sweep_runs};
  return table;
}

const SweepKernelTable& native_kernel_table() {
  static const SweepKernelTable table = [] {
    switch (support::best_supported_isa()) {
#if defined(SCRUTINY_HAVE_X86_KERNEL_TUS)
      case support::Isa::Avx512:
        return SweepKernelTable{"avx512", &vector_sweep_avx512,
                                &bitset_sweep_runs};
      case support::Isa::Avx2:
        return SweepKernelTable{"avx2", &vector_sweep_avx2,
                                &bitset_sweep_runs};
#endif
#if defined(__SSE2__)
      case support::Isa::Sse2:
        return SweepKernelTable{"sse2", &vector_sweep_sse2,
                                &bitset_sweep_runs};
#endif
#if defined(__aarch64__)
      case support::Isa::Neon:
        return SweepKernelTable{"neon", &vector_sweep_neon,
                                &bitset_sweep_runs};
#endif
      default:
        return SweepKernelTable{"scalar", &vector_sweep_scalar,
                                &bitset_sweep_runs};
    }
  }();
  return table;
}

const SweepKernelTable& default_kernel_table() {
  static const SweepKernelTable& table = support::force_scalar_kernels()
                                             ? scalar_kernel_table()
                                             : native_kernel_table();
  return table;
}

const SweepKernelTable& kernel_table_for(KernelChoice choice) {
  switch (choice) {
    case KernelChoice::Scalar: return scalar_kernel_table();
    case KernelChoice::Simd: return native_kernel_table();
    case KernelChoice::Auto: break;
  }
  return default_kernel_table();
}

}  // namespace scrutiny::ad
