#include "ad/tape.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace scrutiny::ad {

namespace {

thread_local Tape* g_active_tape = nullptr;

/// Identifiers are 32-bit; the last representable one is reserved as the
/// overflow sentinel (matching the recording-time guard).
constexpr std::uint64_t kMaxStatements = 0xFFFFFFFFull - 1;

/// Mirrors kMaxSweepWorkers' spirit from PR 5: a bound wide enough for
/// any real statement, tight enough to catch garbage before bad_alloc.
constexpr double kMaxArgsPerStatement = 256.0;

/// The NPB suite averages ~2 args/statement of (8+4)-byte pairs.  Kept at
/// the historical 32 even though kind runs shrank the statement index to
/// ~0 bytes/statement: segment capacities (and therefore segment
/// boundaries and every downstream number) stay identical across the SoA
/// change.
constexpr std::uint64_t kBytesPerStatementEstimate = 32;

}  // namespace

Tape* active_tape() noexcept { return g_active_tape; }
void set_active_tape(Tape* tape) noexcept { g_active_tape = tape; }

std::uint64_t segment_capacity_for_limit(
    std::uint64_t memory_limit_bytes) noexcept {
  if (memory_limit_bytes == 0) return 0;
  // Aim for ~8 segments inside the budget so eviction has granularity.
  const std::uint64_t statements =
      memory_limit_bytes / (8 * kBytesPerStatementEstimate);
  return std::clamp<std::uint64_t>(statements, std::uint64_t{1} << 10,
                                   std::uint64_t{1} << 20);
}

Tape::Tape(TapeOptions options)
    : storage_(std::move(options.storage)),
      segment_capacity_(options.segment_capacity) {
  if (options.kernels != nullptr) kernels_ = options.kernels;
  if (segment_capacity_ != 0 && storage_ == nullptr) {
    storage_ = std::make_unique<ResidentTapeStorage>();
  }
}

void Tape::reserve(std::uint64_t statements, double args_per_statement) {
  SCRUTINY_REQUIRE(
      statements <= kMaxStatements,
      "tape reserve for " + std::to_string(statements) +
          " statements exceeds the 32-bit identifier space (max " +
          std::to_string(kMaxStatements) + ")");
  SCRUTINY_REQUIRE(
      args_per_statement >= 0.0 &&
          args_per_statement <= kMaxArgsPerStatement,
      "tape reserve with " + std::to_string(args_per_statement) +
          " args/statement is outside [0, 256]");
  reserve_args_per_statement_ = args_per_statement;
  // A segmented tape never holds more than one segment's worth in the
  // active arrays, so clamp the grant rather than pre-sizing the world.
  if (segment_capacity_ != 0) {
    statements = std::min(statements, segment_capacity_);
  }
  // Kind runs compress whole 1-arg/2-arg stretches into 4 bytes each;
  // even a pessimistic 1-in-4 alternation stays tiny next to the
  // argument arrays.
  active_.kind_runs.reserve(statements / 4 + 16);
  const auto args = static_cast<std::uint64_t>(
      static_cast<double>(statements) * args_per_statement);
  active_.partials.reserve(args);
  active_.arg_ids.reserve(args);
}

void Tape::seal_active() {
  auto segment = std::make_shared<TapeSegment>(std::move(active_));
  // Sealed segments are immutable; return the reserve overshoot.
  segment->kind_runs.shrink_to_fit();
  segment->partials.shrink_to_fit();
  segment->arg_ids.shrink_to_fit();
  sealed_statements_ += segment->num_statements;
  sealed_arguments_ += segment->num_arguments();
  if (storage_ == nullptr) {
    storage_ = std::make_unique<ResidentTapeStorage>();
  }
  storage_->seal(std::move(segment));
  active_ = TapeSegment{};
  active_.first_statement = sealed_statements_;
  statement_args_mark_ = 0;
  active_.kind_runs.reserve(segment_capacity_ / 4 + 16);
  const auto args = static_cast<std::uint64_t>(
      static_cast<double>(segment_capacity_) * reserve_args_per_statement_);
  active_.partials.reserve(args);
  active_.arg_ids.reserve(args);
}

Identifier Tape::register_input() {
  ++num_inputs_;
  return finish_statement();
}

Identifier Tape::push_statement(std::span<const double> partials,
                                std::span<const Identifier> ids) {
  SCRUTINY_REQUIRE(partials.size() == ids.size(),
                   "mismatched statement arguments");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != kPassiveId) {
      active_.partials.push_back(partials[i]);
      active_.arg_ids.push_back(ids[i]);
    }
  }
  return finish_statement();
}

Identifier Tape::push1(double partial, Identifier id) {
  if (id != kPassiveId) {
    active_.partials.push_back(partial);
    active_.arg_ids.push_back(id);
  }
  return finish_statement();
}

Identifier Tape::push2(double p0, Identifier id0, double p1, Identifier id1) {
  if (id0 != kPassiveId) {
    active_.partials.push_back(p0);
    active_.arg_ids.push_back(id0);
  }
  if (id1 != kPassiveId) {
    active_.partials.push_back(p1);
    active_.arg_ids.push_back(id1);
  }
  return finish_statement();
}

void Tape::set_adjoint(Identifier id, double value) {
  SCRUTINY_REQUIRE(id <= num_statements(), "adjoint id out of range");
  adjoints_.resize(num_statements());
  adjoints_.seed(id, value);
}

double Tape::adjoint(Identifier id) const { return adjoints_.adjoint(id); }

void Tape::evaluate() { evaluate_with(adjoints_); }

void Tape::clear_adjoints() { adjoints_.clear(); }

void Tape::reset() {
  active_ = TapeSegment{};
  statement_args_mark_ = 0;
  if (storage_ != nullptr) storage_->clear();
  sealed_statements_ = 0;
  sealed_arguments_ = 0;
  adjoints_.release();
  num_inputs_ = 0;
  recording_ = false;
}

TapeStats Tape::stats() const noexcept {
  TapeStats s;
  s.num_statements = num_statements();
  s.num_arguments = sealed_arguments_ + active_.partials.size();
  s.num_inputs = num_inputs_;
  const std::uint64_t adjoint_bytes =
      adjoints_.num_ids() == 0 ? 0
                               : (adjoints_.num_ids() + 1) * sizeof(double);
  s.memory_bytes = active_.reserved_bytes() + adjoint_bytes;
  s.resident_bytes = active_.resident_bytes() + adjoint_bytes;
  s.num_segments = 1;  // the active segment
  if (storage_ != nullptr) {
    const TapeStorageStats storage = storage_->stats();
    s.memory_bytes += storage.reserved_bytes;
    s.resident_bytes += storage.resident_bytes;
    s.num_segments += storage.num_segments;
    s.resident_peak_bytes =
        storage.resident_peak_bytes + active_.resident_bytes() +
        adjoint_bytes;
    s.segments_spilled = storage.segments_spilled;
    s.segments_reloaded = storage.segments_reloaded;
    s.spilled_bytes = storage.spilled_bytes;
  }
  s.resident_peak_bytes = std::max(s.resident_peak_bytes, s.resident_bytes);
  return s;
}

}  // namespace scrutiny::ad
