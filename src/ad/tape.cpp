#include "ad/tape.hpp"

#include <algorithm>

namespace scrutiny::ad {

namespace {
thread_local Tape* g_active_tape = nullptr;
}  // namespace

Tape* active_tape() noexcept { return g_active_tape; }
void set_active_tape(Tape* tape) noexcept { g_active_tape = tape; }

void Tape::reserve(std::uint64_t statements, double args_per_statement) {
  arg_ends_.reserve(statements);
  const auto args =
      static_cast<std::uint64_t>(static_cast<double>(statements) *
                                 args_per_statement);
  partials_.reserve(args);
  arg_ids_.reserve(args);
}

Identifier Tape::register_input() {
  arg_ends_.push_back(partials_.size());
  ++num_inputs_;
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push_statement(std::span<const double> partials,
                                std::span<const Identifier> ids) {
  SCRUTINY_REQUIRE(partials.size() == ids.size(),
                   "mismatched statement arguments");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != kPassiveId) {
      partials_.push_back(partials[i]);
      arg_ids_.push_back(ids[i]);
    }
  }
  arg_ends_.push_back(partials_.size());
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push1(double partial, Identifier id) {
  if (id != kPassiveId) {
    partials_.push_back(partial);
    arg_ids_.push_back(id);
  }
  arg_ends_.push_back(partials_.size());
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push2(double p0, Identifier id0, double p1, Identifier id1) {
  if (id0 != kPassiveId) {
    partials_.push_back(p0);
    arg_ids_.push_back(id0);
  }
  if (id1 != kPassiveId) {
    partials_.push_back(p1);
    arg_ids_.push_back(id1);
  }
  arg_ends_.push_back(partials_.size());
  return static_cast<Identifier>(arg_ends_.size());
}

void Tape::ensure_adjoints() {
  if (adjoints_.size() < arg_ends_.size() + 1) {
    adjoints_.resize(arg_ends_.size() + 1, 0.0);
  }
}

void Tape::set_adjoint(Identifier id, double value) {
  SCRUTINY_REQUIRE(id <= arg_ends_.size(), "adjoint id out of range");
  ensure_adjoints();
  adjoints_[id] = value;
}

double Tape::adjoint(Identifier id) const {
  if (id >= adjoints_.size()) return 0.0;
  return adjoints_[id];
}

void Tape::evaluate() {
  ensure_adjoints();
  const std::size_t n = arg_ends_.size();
  for (std::size_t k = n; k-- > 0;) {
    const double adj = adjoints_[k + 1];
    if (adj == 0.0) continue;
    const std::uint64_t begin = k == 0 ? 0 : arg_ends_[k - 1];
    const std::uint64_t end = arg_ends_[k];
    for (std::uint64_t a = begin; a < end; ++a) {
      adjoints_[arg_ids_[a]] += partials_[a] * adj;
    }
  }
}

void Tape::clear_adjoints() {
  std::fill(adjoints_.begin(), adjoints_.end(), 0.0);
}

void Tape::reset() {
  arg_ends_.clear();
  partials_.clear();
  arg_ids_.clear();
  adjoints_.clear();
  num_inputs_ = 0;
  recording_ = false;
}

TapeStats Tape::stats() const noexcept {
  TapeStats s;
  s.num_statements = arg_ends_.size();
  s.num_arguments = partials_.size();
  s.num_inputs = num_inputs_;
  s.memory_bytes = arg_ends_.capacity() * sizeof(std::uint64_t) +
                   partials_.capacity() * sizeof(double) +
                   arg_ids_.capacity() * sizeof(Identifier) +
                   adjoints_.capacity() * sizeof(double);
  return s;
}

}  // namespace scrutiny::ad
