#include "ad/tape.hpp"

namespace scrutiny::ad {

namespace {
thread_local Tape* g_active_tape = nullptr;
}  // namespace

Tape* active_tape() noexcept { return g_active_tape; }
void set_active_tape(Tape* tape) noexcept { g_active_tape = tape; }

void Tape::reserve(std::uint64_t statements, double args_per_statement) {
  arg_ends_.reserve(statements);
  const auto args =
      static_cast<std::uint64_t>(static_cast<double>(statements) *
                                 args_per_statement);
  partials_.reserve(args);
  arg_ids_.reserve(args);
}

Identifier Tape::register_input() {
  arg_ends_.push_back(partials_.size());
  ++num_inputs_;
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push_statement(std::span<const double> partials,
                                std::span<const Identifier> ids) {
  SCRUTINY_REQUIRE(partials.size() == ids.size(),
                   "mismatched statement arguments");
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] != kPassiveId) {
      partials_.push_back(partials[i]);
      arg_ids_.push_back(ids[i]);
    }
  }
  arg_ends_.push_back(partials_.size());
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push1(double partial, Identifier id) {
  if (id != kPassiveId) {
    partials_.push_back(partial);
    arg_ids_.push_back(id);
  }
  arg_ends_.push_back(partials_.size());
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

Identifier Tape::push2(double p0, Identifier id0, double p1, Identifier id1) {
  if (id0 != kPassiveId) {
    partials_.push_back(p0);
    arg_ids_.push_back(id0);
  }
  if (id1 != kPassiveId) {
    partials_.push_back(p1);
    arg_ids_.push_back(id1);
  }
  arg_ends_.push_back(partials_.size());
  SCRUTINY_REQUIRE(arg_ends_.size() < 0xFFFFFFFFull, "tape identifier overflow");
  return static_cast<Identifier>(arg_ends_.size());
}

void Tape::set_adjoint(Identifier id, double value) {
  SCRUTINY_REQUIRE(id <= arg_ends_.size(), "adjoint id out of range");
  adjoints_.resize(arg_ends_.size());
  adjoints_.seed(id, value);
}

double Tape::adjoint(Identifier id) const { return adjoints_.adjoint(id); }

void Tape::evaluate() { evaluate_with(adjoints_); }

void Tape::clear_adjoints() { adjoints_.clear(); }

void Tape::reset() {
  arg_ends_.clear();
  partials_.clear();
  arg_ids_.clear();
  adjoints_.release();
  num_inputs_ = 0;
  recording_ = false;
}

TapeStats Tape::stats() const noexcept {
  TapeStats s;
  s.num_statements = arg_ends_.size();
  s.num_arguments = partials_.size();
  s.num_inputs = num_inputs_;
  s.memory_bytes = arg_ends_.capacity() * sizeof(std::uint64_t) +
                   partials_.capacity() * sizeof(double) +
                   arg_ids_.capacity() * sizeof(Identifier) +
                   (adjoints_.num_ids() == 0
                        ? 0
                        : (adjoints_.num_ids() + 1) * sizeof(double));
  return s;
}

}  // namespace scrutiny::ad
