// Uniform access to the primal value of any scrutiny scalar type.
//
// Kernels templated on the scalar type occasionally need the plain double
// (diagnostics, verification tolerances, array indexing).  passive_value()
// reads it without recording anything — including for Marked<T>, where a
// normal .value() call would count as a program read.
#pragma once

#include <type_traits>

#include "ad/forward.hpp"
#include "ad/readset.hpp"
#include "ad/reverse.hpp"

namespace scrutiny::ad {

template <typename T>
struct ScalarTraits {
  static constexpr bool is_ad_type = false;
  static double passive_value(const T& x) noexcept {
    return static_cast<double>(x);
  }
};

template <>
struct ScalarTraits<Real> {
  static constexpr bool is_ad_type = true;
  static double passive_value(const Real& x) noexcept { return x.value(); }
};

template <>
struct ScalarTraits<Dual> {
  static constexpr bool is_ad_type = true;
  static double passive_value(const Dual& x) noexcept { return x.value(); }
};

template <typename U>
struct ScalarTraits<Marked<U>> {
  static constexpr bool is_ad_type = true;
  static double passive_value(const Marked<U>& x) noexcept {
    return static_cast<double>(x.peek());
  }
};

/// Primal value of any scalar, never recording a read/tape statement.
template <typename T>
[[nodiscard]] double passive_value(const T& x) noexcept {
  return ScalarTraits<T>::passive_value(x);
}

/// True for AD-instrumented scalar types.
template <typename T>
inline constexpr bool is_ad_scalar_v = ScalarTraits<T>::is_ad_type;

}  // namespace scrutiny::ad
