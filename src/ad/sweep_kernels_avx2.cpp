// AVX2 sweep entry point.  This TU is compiled with -mavx2 -mfma
// -ffp-contract=off (see src/CMakeLists.txt) and must contain ONLY code
// reached after best_supported_isa() reports Avx2 or better — all bodies
// it instantiates have internal linkage (anonymous namespace in
// sweep_kernels_body.hpp), so none of its AVX2-encoded code can be
// comdat-merged into the baseline path.
#include "ad/sweep_kernels.hpp"
#include "ad/sweep_kernels_body.hpp"
#include "support/simd.hpp"

namespace scrutiny::ad {

void vector_sweep_avx2(const SegmentView& segment,
                       const VectorLaneView& view) {
  switch (view.stride) {
    case 8: vector_sweep_blocks<support::PackAvx2F64, 2>(segment, view);
      break;
    case 4: vector_sweep_blocks<support::PackAvx2F64, 1>(segment, view);
      break;
    case 2: vector_sweep_blocks<support::PackSse2F64, 1>(segment, view);
      break;
    case 1: vector_sweep_blocks<support::PackScalarF64, 1>(segment, view);
      break;
    default: vector_sweep_any_stride(segment, view); break;
  }
}

}  // namespace scrutiny::ad
