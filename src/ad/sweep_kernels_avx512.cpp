// AVX-512 sweep entry point.  Compiled with -mavx512f -mavx512vl
// -mavx512dq -mfma -ffp-contract=off; only called after
// best_supported_isa() confirms F+VL+DQ.  Same internal-linkage rule as
// the AVX2 TU: no body instantiated here can leak into baseline code.
#include "ad/sweep_kernels.hpp"
#include "ad/sweep_kernels_body.hpp"
#include "support/simd.hpp"

namespace scrutiny::ad {

void vector_sweep_avx512(const SegmentView& segment,
                         const VectorLaneView& view) {
  switch (view.stride) {
    case 8: vector_sweep_blocks<support::PackAvx512F64, 1>(segment, view);
      break;
    case 4: vector_sweep_blocks<support::PackAvx2F64, 1>(segment, view);
      break;
    case 2: vector_sweep_blocks<support::PackSse2F64, 1>(segment, view);
      break;
    case 1: vector_sweep_blocks<support::PackScalarF64, 1>(segment, view);
      break;
    default: vector_sweep_any_stride(segment, view); break;
  }
}

}  // namespace scrutiny::ad
