// Forward-mode AD scalar (dual numbers).
//
// Used for cross-validating the reverse tape (tests) and as an analysis
// mode ablation: forward mode needs one program run per *input* element,
// where reverse mode needs one sweep per *output* — the cost asymmetry the
// paper exploits by choosing reverse-mode Enzyme.
#pragma once

#include <cmath>

namespace scrutiny::ad {

class Dual {
 public:
  constexpr Dual() noexcept : value_(0.0), deriv_(0.0) {}
  constexpr Dual(double value) noexcept  // NOLINT: implicit by design
      : value_(value), deriv_(0.0) {}
  constexpr Dual(int value) noexcept  // NOLINT: implicit by design
      : value_(static_cast<double>(value)), deriv_(0.0) {}
  constexpr Dual(double value, double deriv) noexcept
      : value_(value), deriv_(deriv) {}

  [[nodiscard]] constexpr double value() const noexcept { return value_; }
  [[nodiscard]] constexpr double derivative() const noexcept {
    return deriv_;
  }
  void set_derivative(double d) noexcept { deriv_ = d; }

  Dual& operator+=(const Dual& r) { return *this = *this + r; }
  Dual& operator-=(const Dual& r) { return *this = *this - r; }
  Dual& operator*=(const Dual& r) { return *this = *this * r; }
  Dual& operator/=(const Dual& r) { return *this = *this / r; }

  friend constexpr Dual operator+(const Dual& a, const Dual& b) {
    return {a.value_ + b.value_, a.deriv_ + b.deriv_};
  }
  friend constexpr Dual operator-(const Dual& a, const Dual& b) {
    return {a.value_ - b.value_, a.deriv_ - b.deriv_};
  }
  friend constexpr Dual operator*(const Dual& a, const Dual& b) {
    return {a.value_ * b.value_, a.deriv_ * b.value_ + a.value_ * b.deriv_};
  }
  friend constexpr Dual operator/(const Dual& a, const Dual& b) {
    // Primal value with plain-division rounding (bit-identical to the
    // uninstrumented program); reciprocal only in the derivative.
    const double inv = 1.0 / b.value_;
    return {a.value_ / b.value_,
            (a.deriv_ - a.value_ * inv * b.deriv_) * inv};
  }
  friend constexpr Dual operator-(const Dual& a) {
    return {-a.value_, -a.deriv_};
  }
  friend constexpr Dual operator+(const Dual& a) { return a; }

  friend constexpr bool operator<(const Dual& a, const Dual& b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(const Dual& a, const Dual& b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(const Dual& a, const Dual& b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(const Dual& a, const Dual& b) {
    return a.value_ >= b.value_;
  }
  friend constexpr bool operator==(const Dual& a, const Dual& b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(const Dual& a, const Dual& b) {
    return a.value_ != b.value_;
  }

 private:
  double value_;
  double deriv_;
};

inline Dual sqrt(const Dual& a) {
  const double r = std::sqrt(a.value());
  const double partial = r > 0.0 ? 0.5 / r : 0.0;
  return {r, partial * a.derivative()};
}
inline Dual exp(const Dual& a) {
  const double r = std::exp(a.value());
  return {r, r * a.derivative()};
}
inline Dual log(const Dual& a) {
  return {std::log(a.value()), a.derivative() / a.value()};
}
inline Dual log10(const Dual& a) {
  return {std::log10(a.value()),
          a.derivative() / (a.value() * 2.302585092994046)};
}
inline Dual sin(const Dual& a) {
  return {std::sin(a.value()), std::cos(a.value()) * a.derivative()};
}
inline Dual cos(const Dual& a) {
  return {std::cos(a.value()), -std::sin(a.value()) * a.derivative()};
}
inline Dual tan(const Dual& a) {
  const double t = std::tan(a.value());
  return {t, (1.0 + t * t) * a.derivative()};
}
inline Dual asin(const Dual& a) {
  return {std::asin(a.value()),
          a.derivative() / std::sqrt(1.0 - a.value() * a.value())};
}
inline Dual acos(const Dual& a) {
  return {std::acos(a.value()),
          -a.derivative() / std::sqrt(1.0 - a.value() * a.value())};
}
inline Dual atan(const Dual& a) {
  return {std::atan(a.value()),
          a.derivative() / (1.0 + a.value() * a.value())};
}
inline Dual atan2(const Dual& y, const Dual& x) {
  const double denom = x.value() * x.value() + y.value() * y.value();
  return {std::atan2(y.value(), x.value()),
          (x.value() * y.derivative() - y.value() * x.derivative()) / denom};
}
inline Dual sinh(const Dual& a) {
  return {std::sinh(a.value()), std::cosh(a.value()) * a.derivative()};
}
inline Dual cosh(const Dual& a) {
  return {std::cosh(a.value()), std::sinh(a.value()) * a.derivative()};
}
inline Dual tanh(const Dual& a) {
  const double t = std::tanh(a.value());
  return {t, (1.0 - t * t) * a.derivative()};
}
inline Dual fabs(const Dual& a) {
  const double sign = a.value() >= 0.0 ? 1.0 : -1.0;
  return {std::fabs(a.value()), sign * a.derivative()};
}
inline Dual abs(const Dual& a) { return fabs(a); }
inline Dual pow(const Dual& a, const Dual& b) {
  const double r = std::pow(a.value(), b.value());
  const double pa = b.value() * std::pow(a.value(), b.value() - 1.0);
  const double pb = a.value() > 0.0 ? r * std::log(a.value()) : 0.0;
  return {r, pa * a.derivative() + pb * b.derivative()};
}
inline Dual pow(const Dual& a, double b) {
  return {std::pow(a.value(), b),
          b * std::pow(a.value(), b - 1.0) * a.derivative()};
}
inline Dual max(const Dual& a, const Dual& b) {
  return a.value() >= b.value() ? a : b;
}
inline Dual min(const Dual& a, const Dual& b) {
  return a.value() <= b.value() ? a : b;
}
inline Dual fmax(const Dual& a, const Dual& b) { return max(a, b); }
inline Dual fmin(const Dual& a, const Dual& b) { return min(a, b); }
inline int to_int(const Dual& a) noexcept {
  return static_cast<int>(a.value());
}
inline double floor(const Dual& a) noexcept { return std::floor(a.value()); }
inline double ceil(const Dual& a) noexcept { return std::ceil(a.value()); }

}  // namespace scrutiny::ad
