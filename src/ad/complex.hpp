// Minimal complex number template usable with any scrutiny scalar type.
//
// std::complex<T> has unspecified behaviour for non-floating-point T, so the
// FT mini-app (NPB `dcomplex`) uses this POD-style template instead.  Only
// the operations the FFT kernels need are provided; twiddle factors are
// computed in plain double and enter as passive constants.
#pragma once

#include <cmath>

namespace scrutiny::ad {

template <typename T>
struct Complex {
  T re{};
  T im{};

  constexpr Complex() = default;
  constexpr Complex(T real, T imag) : re(real), im(imag) {}
  constexpr explicit Complex(T real) : re(real), im(T(0)) {}

  Complex& operator+=(const Complex& r) { return *this = *this + r; }
  Complex& operator-=(const Complex& r) { return *this = *this - r; }
  Complex& operator*=(const Complex& r) { return *this = *this * r; }

  friend Complex operator+(const Complex& a, const Complex& b) {
    return {a.re + b.re, a.im + b.im};
  }
  friend Complex operator-(const Complex& a, const Complex& b) {
    return {a.re - b.re, a.im - b.im};
  }
  friend Complex operator*(const Complex& a, const Complex& b) {
    return {a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
  }
  friend Complex operator*(const Complex& a, double s) {
    return {a.re * s, a.im * s};
  }
  friend Complex operator*(double s, const Complex& a) { return a * s; }
  friend Complex operator/(const Complex& a, double s) {
    return {a.re / s, a.im / s};
  }
};

template <typename T>
[[nodiscard]] constexpr Complex<T> conj(const Complex<T>& a) {
  return {a.re, T(0) - a.im};
}

/// Complex twiddle in plain double (enters AD code as a passive constant).
[[nodiscard]] inline Complex<double> polar_unit(double angle) {
  return {std::cos(angle), std::sin(angle)};
}

}  // namespace scrutiny::ad
