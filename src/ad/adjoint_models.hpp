// Pluggable adjoint models for the reverse sweep.
//
// Tape::evaluate_with(Model&) walks the recorded statements backwards and
// delegates the actual adjoint arithmetic to a model.  Three models cover
// the cost/precision trade-offs of the criticality analysis:
//
//  * ScalarAdjoints — one double per identifier: the classic reverse sweep,
//    one tape pass per seeded output.  Kept for ablation and for plain
//    gradient evaluation (Tape's built-in adjoint API sits on it).
//  * VectorAdjoints — a fixed-width block of kLanes doubles per identifier.
//    Seeding one output per lane harvests ∂out/∂element for kLanes outputs
//    in a single tape pass ("vector mode" / v^T J with a block of seeds);
//    the analyzer blocks over output chunks when num_outputs > kLanes.
//  * BitsetAdjoints — one bit per output, 64 outputs per word: pure
//    dependency propagation (adjoint_bits[arg] |= adjoint_bits[lhs] when
//    the partial is nonzero).  Answers the threshold-0 activity question
//    exactly, with no numeric-cancellation risk and no magnitudes.
//
// All models reset sparsely: they remember which slots they dirtied, so
// clearing between sweeps costs O(touched), not O(tape) — the analyzer's
// per-block reset stays off the hot path.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "ad/identifier.hpp"
#include "ad/sweep_kernels.hpp"
#include "support/aligned_buffer.hpp"
#include "support/error.hpp"

namespace scrutiny::ad {

/// Which adjoint model the reverse sweep runs on.
enum class SweepKind : std::uint8_t {
  Scalar,  ///< one tape pass per output (ablation baseline)
  Vector,  ///< kLanes outputs per tape pass, blocked over chunks
  Bitset,  ///< 64 outputs per word, dependency bits only (threshold 0)
};

[[nodiscard]] constexpr const char* sweep_kind_name(SweepKind kind) {
  switch (kind) {
    case SweepKind::Scalar: return "scalar";
    case SweepKind::Vector: return "vector";
    case SweepKind::Bitset: return "bitset";
  }
  return "?";
}

[[nodiscard]] inline std::optional<SweepKind> parse_sweep_kind(
    std::string_view text) {
  if (text == "scalar") return SweepKind::Scalar;
  if (text == "vector") return SweepKind::Vector;
  if (text == "bitset") return SweepKind::Bitset;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ScalarAdjoints
// ---------------------------------------------------------------------------

class ScalarAdjoints {
 public:
  static constexpr std::size_t kLanes = 1;

  /// Lane-count hint from the caller; the scalar model has one lane, so
  /// this is a no-op (kept so all models share the analyzer's protocol).
  void configure_lanes(std::size_t) {}
  [[nodiscard]] std::size_t lane_stride() const noexcept { return kLanes; }

  /// Grows storage to cover identifiers 0..num_ids (0 is a write sink for
  /// passive arguments).  Existing adjoints are preserved.
  void resize(std::size_t num_ids) {
    if (data_.size() < num_ids + 1) data_.resize(num_ids + 1, 0.0);
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return data_.empty() ? 0 : data_.size() - 1;
  }

  void seed(Identifier id, double value) {
    SCRUTINY_REQUIRE(id < data_.size(), "adjoint id out of range");
    if (data_[id] == 0.0 && value != 0.0) touched_.push_back(id);
    data_[id] = value;
  }

  [[nodiscard]] double adjoint(Identifier id) const noexcept {
    return id < data_.size() ? data_[id] : 0.0;
  }

  /// Sparse reset: only slots dirtied since the last clear are zeroed.
  void clear() {
    for (const Identifier id : touched_) data_[id] = 0.0;
    touched_.clear();
  }

  /// Drops all storage (Tape::reset).
  void release() {
    data_.clear();
    touched_.clear();
  }

  // ---- Tape::evaluate_with hooks --------------------------------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return data_[lhs] != 0.0;
  }

  [[nodiscard]] double load(Identifier lhs) const noexcept {
    return data_[lhs];
  }

  void accumulate(Identifier arg, double partial, double lhs_adjoint) {
    const double add = partial * lhs_adjoint;
    if (add == 0.0) return;
    double& slot = data_[arg];
    if (slot == 0.0) touched_.push_back(arg);
    slot += add;
  }

 private:
  std::vector<double> data_;  // indexed by identifier; [0] is a sink
  std::vector<Identifier> touched_;
};

// ---------------------------------------------------------------------------
// VectorAdjoints
// ---------------------------------------------------------------------------

class VectorAdjoints {
 public:
  /// One cache line of doubles per identifier at the full stride.
  static constexpr std::size_t kLanes = 8;

  /// Narrows the per-identifier block to the next power of two covering
  /// `lanes` (1, 2, 4, or 8 doubles).  An analysis with 2 outputs then
  /// streams 16-byte blocks instead of full cache lines — 4x less
  /// adjoint traffic for apps like CG — while per-lane values stay
  /// bit-identical (each lane's fma chain is unchanged; lanes ≥ stride
  /// simply don't exist).  Must be called before storage is allocated;
  /// it never reinterprets live data.
  void configure_lanes(std::size_t lanes) {
    SCRUTINY_REQUIRE(lanes >= 1 && lanes <= kLanes,
                     "adjoint lane count out of range");
    const std::size_t stride = std::bit_ceil(lanes);
    SCRUTINY_REQUIRE(data_.empty() || stride == stride_,
                     "cannot restride live adjoint storage");
    stride_ = stride;
  }

  /// Doubles per identifier block (1, 2, 4, or 8).
  [[nodiscard]] std::size_t lane_stride() const noexcept { return stride_; }

  void resize(std::size_t num_ids) {
    if (data_.size() < (num_ids + 1) * stride_) {
      // CacheAlignedVector keeps data_.data() 64-byte aligned across this
      // growth, so block addresses stay valid for aligned SIMD loads
      // (block i starts at i * stride_ * 8 bytes: a multiple of the pack
      // width for every supported stride).
      data_.resize((num_ids + 1) * stride_, 0.0);
      dirty_.resize(num_ids + 1, 0);
    }
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return dirty_.empty() ? 0 : dirty_.size() - 1;
  }

  void seed(Identifier id, std::size_t lane, double value) {
    SCRUTINY_REQUIRE(id < dirty_.size(), "adjoint id out of range");
    SCRUTINY_REQUIRE(lane < stride_, "adjoint lane out of range");
    mark(id);
    data_[id * stride_ + lane] = value;
  }

  [[nodiscard]] double adjoint(Identifier id, std::size_t lane) const {
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    if (lane >= stride_) return 0.0;
    const std::size_t index = id * stride_ + lane;
    return index < data_.size() ? data_[index] : 0.0;
  }

  void clear() {
    for (const Identifier id : touched_) {
      double* block = data_.data() + std::size_t{id} * stride_;
      for (std::size_t w = 0; w < stride_; ++w) block[w] = 0.0;
      dirty_[id] = 0;
    }
    touched_.clear();
  }

  void release() {
    data_.clear();
    dirty_.clear();
    touched_.clear();
    stride_ = kLanes;
  }

  // ---- Sweep kernel hooks ---------------------------------------------

  /// POD view of the lane storage for the dispatched SIMD kernels.
  [[nodiscard]] VectorLaneView lane_view() noexcept {
    return VectorLaneView{data_.data(), dirty_.data(), this, stride_};
  }

  /// First-touch callback from the kernels (out-of-line, cold path).
  void note_touched(Identifier id) { touched_.push_back(id); }

  // ---- Tape::evaluate_with hooks (generic/reference path) -------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return dirty_[lhs] != 0;
  }

  /// Returns the lane block BY VALUE: the sweep loads it once per
  /// statement and the copy provably cannot alias the destination blocks,
  /// so accumulate keeps the lanes in registers across arguments.
  [[nodiscard]] std::array<double, kLanes> load(Identifier lhs) const noexcept {
    std::array<double, kLanes> block{};
    const double* src = data_.data() + std::size_t{lhs} * stride_;
    for (std::size_t w = 0; w < stride_; ++w) block[w] = src[w];
    return block;
  }

  void accumulate(Identifier arg, double partial,
                  const std::array<double, kLanes>& lhs_block) {
    if (partial == 0.0) return;
    mark(arg);
    double* dst = data_.data() + std::size_t{arg} * stride_;
    for (std::size_t w = 0; w < stride_; ++w) {
      dst[w] += partial * lhs_block[w];
    }
  }

 private:
  void mark(Identifier id) {
    if (dirty_[id] == 0) {
      dirty_[id] = 1;
      touched_.push_back(id);
    }
  }

  support::CacheAlignedVector<double> data_;  // stride_ adjoints per id
  std::vector<std::uint8_t> dirty_;  // 1 = block may be nonzero
  std::vector<Identifier> touched_;
  std::size_t stride_ = kLanes;
};

// ---------------------------------------------------------------------------
// BitsetAdjoints
// ---------------------------------------------------------------------------

class BitsetAdjoints {
 public:
  static constexpr std::size_t kLanes = 64;

  /// Bits pack 64 to the word regardless of the output count, so the
  /// lane hint is a no-op here.
  void configure_lanes(std::size_t) {}
  [[nodiscard]] std::size_t lane_stride() const noexcept { return kLanes; }

  void resize(std::size_t num_ids) {
    if (bits_.size() < num_ids + 1) bits_.resize(num_ids + 1, 0);
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return bits_.empty() ? 0 : bits_.size() - 1;
  }

  void seed(Identifier id, std::size_t lane) {
    SCRUTINY_REQUIRE(id < bits_.size(), "adjoint id out of range");
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    std::uint64_t& word = bits_[id];
    if (word == 0) touched_.push_back(id);
    word |= std::uint64_t{1} << lane;
  }

  [[nodiscard]] bool test(Identifier id, std::size_t lane) const {
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    if (id >= bits_.size()) return false;
    return (bits_[id] >> lane) & 1u;
  }

  void clear() {
    for (const Identifier id : touched_) bits_[id] = 0;
    touched_.clear();
  }

  void release() {
    bits_.clear();
    touched_.clear();
  }

  // ---- Sweep kernel hooks ---------------------------------------------

  [[nodiscard]] BitsetLaneView lane_view() noexcept {
    return BitsetLaneView{bits_.data(), this};
  }

  void note_touched(Identifier id) { touched_.push_back(id); }

  // ---- Tape::evaluate_with hooks (generic/reference path) -------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return bits_[lhs] != 0;
  }

  [[nodiscard]] std::uint64_t load(Identifier lhs) const noexcept {
    return bits_[lhs];
  }

  void accumulate(Identifier arg, double partial, std::uint64_t lhs_bits) {
    if (partial == 0.0) return;
    std::uint64_t& word = bits_[arg];
    if (word == 0) touched_.push_back(arg);
    word |= lhs_bits;
  }

 private:
  std::vector<std::uint64_t> bits_;  // one dependency word per identifier
  std::vector<Identifier> touched_;
};

}  // namespace scrutiny::ad
