// Pluggable adjoint models for the reverse sweep.
//
// Tape::evaluate_with(Model&) walks the recorded statements backwards and
// delegates the actual adjoint arithmetic to a model.  Three models cover
// the cost/precision trade-offs of the criticality analysis:
//
//  * ScalarAdjoints — one double per identifier: the classic reverse sweep,
//    one tape pass per seeded output.  Kept for ablation and for plain
//    gradient evaluation (Tape's built-in adjoint API sits on it).
//  * VectorAdjoints — a fixed-width block of kLanes doubles per identifier.
//    Seeding one output per lane harvests ∂out/∂element for kLanes outputs
//    in a single tape pass ("vector mode" / v^T J with a block of seeds);
//    the analyzer blocks over output chunks when num_outputs > kLanes.
//  * BitsetAdjoints — one bit per output, 64 outputs per word: pure
//    dependency propagation (adjoint_bits[arg] |= adjoint_bits[lhs] when
//    the partial is nonzero).  Answers the threshold-0 activity question
//    exactly, with no numeric-cancellation risk and no magnitudes.
//
// All models reset sparsely: they remember which slots they dirtied, so
// clearing between sweeps costs O(touched), not O(tape) — the analyzer's
// per-block reset stays off the hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "ad/identifier.hpp"
#include "support/error.hpp"

namespace scrutiny::ad {

/// Which adjoint model the reverse sweep runs on.
enum class SweepKind : std::uint8_t {
  Scalar,  ///< one tape pass per output (ablation baseline)
  Vector,  ///< kLanes outputs per tape pass, blocked over chunks
  Bitset,  ///< 64 outputs per word, dependency bits only (threshold 0)
};

[[nodiscard]] constexpr const char* sweep_kind_name(SweepKind kind) {
  switch (kind) {
    case SweepKind::Scalar: return "scalar";
    case SweepKind::Vector: return "vector";
    case SweepKind::Bitset: return "bitset";
  }
  return "?";
}

[[nodiscard]] inline std::optional<SweepKind> parse_sweep_kind(
    std::string_view text) {
  if (text == "scalar") return SweepKind::Scalar;
  if (text == "vector") return SweepKind::Vector;
  if (text == "bitset") return SweepKind::Bitset;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// ScalarAdjoints
// ---------------------------------------------------------------------------

class ScalarAdjoints {
 public:
  static constexpr std::size_t kLanes = 1;

  /// Grows storage to cover identifiers 0..num_ids (0 is a write sink for
  /// passive arguments).  Existing adjoints are preserved.
  void resize(std::size_t num_ids) {
    if (data_.size() < num_ids + 1) data_.resize(num_ids + 1, 0.0);
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return data_.empty() ? 0 : data_.size() - 1;
  }

  void seed(Identifier id, double value) {
    SCRUTINY_REQUIRE(id < data_.size(), "adjoint id out of range");
    if (data_[id] == 0.0 && value != 0.0) touched_.push_back(id);
    data_[id] = value;
  }

  [[nodiscard]] double adjoint(Identifier id) const noexcept {
    return id < data_.size() ? data_[id] : 0.0;
  }

  /// Sparse reset: only slots dirtied since the last clear are zeroed.
  void clear() {
    for (const Identifier id : touched_) data_[id] = 0.0;
    touched_.clear();
  }

  /// Drops all storage (Tape::reset).
  void release() {
    data_.clear();
    touched_.clear();
  }

  // ---- Tape::evaluate_with hooks --------------------------------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return data_[lhs] != 0.0;
  }

  [[nodiscard]] double load(Identifier lhs) const noexcept {
    return data_[lhs];
  }

  void accumulate(Identifier arg, double partial, double lhs_adjoint) {
    const double add = partial * lhs_adjoint;
    if (add == 0.0) return;
    double& slot = data_[arg];
    if (slot == 0.0) touched_.push_back(arg);
    slot += add;
  }

 private:
  std::vector<double> data_;  // indexed by identifier; [0] is a sink
  std::vector<Identifier> touched_;
};

// ---------------------------------------------------------------------------
// VectorAdjoints
// ---------------------------------------------------------------------------

class VectorAdjoints {
 public:
  /// One cache line of doubles per identifier.
  static constexpr std::size_t kLanes = 8;

  void resize(std::size_t num_ids) {
    if (data_.size() < (num_ids + 1) * kLanes) {
      data_.resize((num_ids + 1) * kLanes, 0.0);
      dirty_.resize(num_ids + 1, 0);
    }
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return dirty_.empty() ? 0 : dirty_.size() - 1;
  }

  void seed(Identifier id, std::size_t lane, double value) {
    SCRUTINY_REQUIRE(id < dirty_.size(), "adjoint id out of range");
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    mark(id);
    data_[id * kLanes + lane] = value;
  }

  [[nodiscard]] double adjoint(Identifier id, std::size_t lane) const {
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    const std::size_t index = id * kLanes + lane;
    return index < data_.size() ? data_[index] : 0.0;
  }

  void clear() {
    for (const Identifier id : touched_) {
      double* block = data_.data() + std::size_t{id} * kLanes;
      for (std::size_t w = 0; w < kLanes; ++w) block[w] = 0.0;
      dirty_[id] = 0;
    }
    touched_.clear();
  }

  void release() {
    data_.clear();
    dirty_.clear();
    touched_.clear();
  }

  // ---- Tape::evaluate_with hooks --------------------------------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return dirty_[lhs] != 0;
  }

  /// Returns the lane block BY VALUE: the sweep loads it once per
  /// statement and the copy provably cannot alias the destination blocks,
  /// so accumulate keeps the lanes in registers across arguments.
  [[nodiscard]] std::array<double, kLanes> load(Identifier lhs) const noexcept {
    std::array<double, kLanes> block;
    const double* src = data_.data() + std::size_t{lhs} * kLanes;
    for (std::size_t w = 0; w < kLanes; ++w) block[w] = src[w];
    return block;
  }

  void accumulate(Identifier arg, double partial,
                  const std::array<double, kLanes>& lhs_block) {
    if (partial == 0.0) return;
    mark(arg);
    double* dst = data_.data() + std::size_t{arg} * kLanes;
    for (std::size_t w = 0; w < kLanes; ++w) {
      dst[w] += partial * lhs_block[w];
    }
  }

 private:
  void mark(Identifier id) {
    if (dirty_[id] == 0) {
      dirty_[id] = 1;
      touched_.push_back(id);
    }
  }

  std::vector<double> data_;        // kLanes adjoints per identifier
  std::vector<std::uint8_t> dirty_;  // 1 = block may be nonzero
  std::vector<Identifier> touched_;
};

// ---------------------------------------------------------------------------
// BitsetAdjoints
// ---------------------------------------------------------------------------

class BitsetAdjoints {
 public:
  static constexpr std::size_t kLanes = 64;

  void resize(std::size_t num_ids) {
    if (bits_.size() < num_ids + 1) bits_.resize(num_ids + 1, 0);
  }

  [[nodiscard]] std::size_t num_ids() const noexcept {
    return bits_.empty() ? 0 : bits_.size() - 1;
  }

  void seed(Identifier id, std::size_t lane) {
    SCRUTINY_REQUIRE(id < bits_.size(), "adjoint id out of range");
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    std::uint64_t& word = bits_[id];
    if (word == 0) touched_.push_back(id);
    word |= std::uint64_t{1} << lane;
  }

  [[nodiscard]] bool test(Identifier id, std::size_t lane) const {
    SCRUTINY_REQUIRE(lane < kLanes, "adjoint lane out of range");
    if (id >= bits_.size()) return false;
    return (bits_[id] >> lane) & 1u;
  }

  void clear() {
    for (const Identifier id : touched_) bits_[id] = 0;
    touched_.clear();
  }

  void release() {
    bits_.clear();
    touched_.clear();
  }

  // ---- Tape::evaluate_with hooks --------------------------------------

  [[nodiscard]] bool active(Identifier lhs) const noexcept {
    return bits_[lhs] != 0;
  }

  [[nodiscard]] std::uint64_t load(Identifier lhs) const noexcept {
    return bits_[lhs];
  }

  void accumulate(Identifier arg, double partial, std::uint64_t lhs_bits) {
    if (partial == 0.0) return;
    std::uint64_t& word = bits_[arg];
    if (word == 0) touched_.push_back(arg);
    word |= lhs_bits;
  }

 private:
  std::vector<std::uint64_t> bits_;  // one dependency word per identifier
  std::vector<Identifier> touched_;
};

}  // namespace scrutiny::ad
