#include "ad/readset.hpp"

namespace scrutiny::ad {

namespace {
thread_local ReadSetTracker* g_active_tracker = nullptr;
}  // namespace

ReadSetTracker* active_tracker() noexcept { return g_active_tracker; }

void set_active_tracker(ReadSetTracker* tracker) noexcept {
  g_active_tracker = tracker;
}

}  // namespace scrutiny::ad
