// Central finite-difference probe.
//
// The slowest but most assumption-free derivative oracle: perturb one state
// element, rerun the window, and difference the outputs.  Used to
// cross-validate the tape in tests and as the FiniteDiff analysis mode
// (with sampling — a full probe is O(#elements) program runs).
#pragma once

#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "support/error.hpp"

namespace scrutiny::ad {

struct FiniteDiffOptions {
  double step = 1e-6;           ///< absolute perturbation h
  double relative_step = 1e-7;  ///< h scaled by |x| when |x| is large
};

/// d(outputs)/d(state[index]) via central differences.
/// `run` must be a pure function from the state vector to the outputs.
inline std::vector<double> finite_diff_probe(
    const std::function<std::vector<double>(const std::vector<double>&)>& run,
    const std::vector<double>& state, std::size_t index,
    const FiniteDiffOptions& options = {}) {
  SCRUTINY_REQUIRE(index < state.size(), "finite-diff index out of range");
  const double x = state[index];
  const double h =
      std::max(options.step, std::fabs(x) * options.relative_step);

  std::vector<double> plus = state;
  plus[index] = x + h;
  std::vector<double> minus = state;
  minus[index] = x - h;

  const std::vector<double> out_plus = run(plus);
  const std::vector<double> out_minus = run(minus);
  SCRUTINY_REQUIRE(out_plus.size() == out_minus.size(),
                   "finite-diff run produced inconsistent output counts");

  std::vector<double> derivative(out_plus.size());
  for (std::size_t m = 0; m < derivative.size(); ++m) {
    derivative[m] = (out_plus[m] - out_minus[m]) / (2.0 * h);
  }
  return derivative;
}

}  // namespace scrutiny::ad
