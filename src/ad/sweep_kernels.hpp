// Runtime-dispatched sweep kernels over the SoA tape.
//
// The backward sweep's inner loop is the hottest code in the repo —
// everything downstream (Table I/II, ParallelSweep, out-of-core
// spilling) multiplies its per-statement cost.  This header defines the
// seam between the tape and the ISA-specific kernel translation units:
//
//  * KindRun — the run-length encoding of the statement stream.  All
//    statements in a run share one argument count, so the kernel walks
//    runs branchlessly instead of re-deriving per-statement extents
//    from an arg_ends array.
//  * SegmentView / VectorLaneView / BitsetLaneView — POD views of a
//    sealed TapeSegment and an adjoint model's storage.  Kernel TUs see
//    only these (never std containers), so code compiled with wider ISA
//    flags cannot leak into baseline-compiled std templates via comdat
//    merging.
//  * SweepKernelTable — the function-pointer table resolved once at
//    startup from the CPU's capabilities (see support/simd.hpp), or
//    pinned to the scalar fallback by SCRUTINY_FORCE_SCALAR_KERNELS /
//    the --kernel CLI flag.
//
// Every kernel in every table computes BIT-IDENTICAL adjoints, dirty
// flags, and touched order: same statement order, same within-statement
// argument order, same unfused multiply-then-add rounding, same
// `partial == 0` skip.  The kernel-invariance test suite asserts this
// across all 8 NPB apps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "ad/identifier.hpp"

namespace scrutiny::ad {

/// One run of consecutive statements sharing an argument count, packed
/// into 4 bytes: bits [8,32) = statement count, bits [0,8) = arg count.
/// Tape statements have at most 255 arguments (enforced at append time),
/// and runs split once they reach kMaxRunStatements.
struct KindRun {
  static constexpr std::uint32_t kMaxRunStatements = 0xFFFFFF;

  std::uint32_t packed = 0;

  static constexpr KindRun make(std::uint32_t statements,
                                std::uint32_t arg_count) {
    return KindRun{(statements << 8) | arg_count};
  }
  constexpr std::uint32_t statements() const { return packed >> 8; }
  constexpr std::uint32_t arg_count() const { return packed & 0xFF; }
  constexpr bool can_extend() const {
    return statements() < kMaxRunStatements;
  }
  constexpr void extend() { packed += 1u << 8; }

  friend constexpr bool operator==(KindRun a, KindRun b) {
    return a.packed == b.packed;
  }
};

/// Read-only POD view of one sealed tape segment's SoA arrays.
struct SegmentView {
  const KindRun* runs = nullptr;
  std::uint64_t num_runs = 0;
  const double* partials = nullptr;
  const Identifier* arg_ids = nullptr;
  std::uint64_t num_statements = 0;
  std::uint64_t num_arguments = 0;
  std::uint64_t first_statement = 0;
};

/// Mutable view of VectorAdjoints' lane storage.  `lanes` is 64-byte
/// aligned; the block for identifier i starts at lanes + i * stride.
/// `model` is the owning VectorAdjoints, used by the out-of-line
/// sweep_note_touched to record first-touch identifiers.
struct VectorLaneView {
  double* lanes = nullptr;
  std::uint8_t* dirty = nullptr;
  void* model = nullptr;
  std::size_t stride = 0;
};

/// Mutable view of BitsetAdjoints' word storage (word == 0 doubles as
/// the dirty flag, so no separate array).
struct BitsetLaneView {
  std::uint64_t* words = nullptr;
  void* model = nullptr;
};

// Cold out-of-line helpers compiled in the baseline TU: record a
// first-touched identifier in the owning model's touched list.  Kernel
// TUs call these instead of touching std::vector themselves.
void sweep_note_touched(const VectorLaneView& view, Identifier id);
void sweep_note_touched(const BitsetLaneView& view, Identifier id);

using VectorSweepFn = void (*)(const SegmentView&, const VectorLaneView&);
using BitsetSweepFn = void (*)(const SegmentView&, const BitsetLaneView&);

struct SweepKernelTable {
  const char* name = "scalar";
  VectorSweepFn vector_sweep = nullptr;
  BitsetSweepFn bitset_sweep = nullptr;
};

/// The always-correct portable fallback.
const SweepKernelTable& scalar_kernel_table();

/// The widest table this CPU supports (ignores the force-scalar env).
const SweepKernelTable& native_kernel_table();

/// native_kernel_table(), unless SCRUTINY_FORCE_SCALAR_KERNELS pins the
/// scalar fallback.  Resolved once and cached.
const SweepKernelTable& default_kernel_table();

/// CLI-facing kernel selection: auto = default_kernel_table(), scalar =
/// the fallback, simd = the native table even when the env var is set.
enum class KernelChoice : std::uint8_t { Auto = 0, Scalar, Simd };

constexpr std::string_view kernel_choice_name(KernelChoice choice) {
  switch (choice) {
    case KernelChoice::Auto: return "auto";
    case KernelChoice::Scalar: return "scalar";
    case KernelChoice::Simd: return "simd";
  }
  return "auto";
}

inline std::optional<KernelChoice> parse_kernel_choice(
    std::string_view text) {
  if (text == "auto") return KernelChoice::Auto;
  if (text == "scalar") return KernelChoice::Scalar;
  if (text == "simd") return KernelChoice::Simd;
  return std::nullopt;
}

const SweepKernelTable& kernel_table_for(KernelChoice choice);

}  // namespace scrutiny::ad
