// Segment storage behind the AD tape: keep it all in RAM, or spill.
//
// ad::Tape records into fixed-capacity TapeSegments.  The segment being
// recorded (the "active" segment) always lives inside the Tape; once full
// it is sealed — frozen, immutable — and handed to a TapeStorage.  The
// reverse sweep walks segments strictly backwards (newest first) and pins
// each one through acquire() for the duration of its span.
//
// Two implementations:
//
//  * ResidentTapeStorage — every sealed segment stays in RAM.  acquire()
//    is a shared_ptr copy; with an unbounded segment capacity (the
//    default Tape configuration) nothing is ever sealed and the sweep
//    never touches storage at all: exactly the historical resident path.
//
//  * SpillingTapeStorage — sealed segments are evicted through any
//    ckpt::StorageBackend (file or memory) whenever the cache-owned
//    resident bytes exceed a configurable budget.  Cold segments are
//    reloaded on demand during the sweep, and prefetch() warms the
//    next-older segment on a background thread so the reload overlaps the
//    sweep of the current one (double-buffered, like ckpt::AsyncBackend).
//    The paper's own medicine, applied to the analyzer: checkpoint the
//    sweep itself.
//
// Concurrency contract (what ad::ParallelSweep relies on):
//  * seal()/clear() are called only by the recording thread, never
//    concurrently with acquire()/prefetch().
//  * acquire()/prefetch() may race freely across sweep workers and the
//    prefetch thread.  A miss is loaded exactly once — concurrent
//    acquirers of the same segment block on the in-flight load instead of
//    double-loading — and the returned handle pins the segment: eviction
//    only drops the cache's reference, never memory a worker still holds.
//  * Segments are immutable after seal, so shared handles need no further
//    synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ad/identifier.hpp"
#include "ad/sweep_kernels.hpp"
#include "ckpt/storage_backend.hpp"

namespace scrutiny::ad {

/// One sealed (or in-recording) span of consecutive tape statements in
/// SoA form.  Statement `k` of the segment defines identifier
/// `first_statement + k + 1`.  Instead of a per-statement arg_ends
/// array, the statement stream is run-length encoded by argument count
/// (`kind_runs`): NPB tapes are long alternating stretches of pure
/// 1-arg / 2-arg statements, so the encoding is tiny (4 bytes per run
/// vs 8 bytes per statement before) and the backward sweep recovers
/// each statement's argument span by walking runs and subtracting
/// `arg_count` from a running cursor — no loads from a per-statement
/// index at all.
struct TapeSegment {
  std::uint64_t first_statement = 0;  ///< global index of statement 0
  std::uint64_t num_statements = 0;
  std::vector<KindRun> kind_runs;
  std::vector<double> partials;
  std::vector<Identifier> arg_ids;

  /// Records one more statement with `arg_count` arguments (their
  /// partials/arg_ids entries are already pushed).  Extends the current
  /// run when the kind matches, else opens a new one.
  void append_statement(std::uint32_t arg_count) {
    ++num_statements;
    if (!kind_runs.empty()) {
      KindRun& back = kind_runs.back();
      if (back.arg_count() == arg_count && back.can_extend()) {
        back.extend();
        return;
      }
    }
    kind_runs.push_back(KindRun::make(1, arg_count));
  }

  [[nodiscard]] std::uint64_t num_arguments() const noexcept {
    return partials.size();
  }
  /// POD view the sweep kernels consume.
  [[nodiscard]] SegmentView view() const noexcept {
    SegmentView v;
    v.runs = kind_runs.data();
    v.num_runs = kind_runs.size();
    v.partials = partials.data();
    v.arg_ids = arg_ids.data();
    v.num_statements = num_statements;
    v.num_arguments = partials.size();
    v.first_statement = first_statement;
    return v;
  }
  /// Live bytes (by size — what the data actually occupies).
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return kind_runs.size() * sizeof(KindRun) +
           partials.size() * sizeof(double) +
           arg_ids.size() * sizeof(Identifier);
  }
  /// Allocated bytes (by capacity — what malloc actually holds).
  [[nodiscard]] std::uint64_t reserved_bytes() const noexcept {
    return kind_runs.capacity() * sizeof(KindRun) +
           partials.capacity() * sizeof(double) +
           arg_ids.capacity() * sizeof(Identifier);
  }
};

/// Pinning read handle: the segment stays loaded at least as long as any
/// handle lives, even if the cache evicts its own reference meanwhile.
using SegmentHandle = std::shared_ptr<const TapeSegment>;

/// Counters a storage reports into TapeStats.
struct TapeStorageStats {
  std::uint64_t num_segments = 0;        ///< sealed segments, total
  std::uint64_t resident_segments = 0;   ///< currently cached in RAM
  std::uint64_t resident_bytes = 0;      ///< cache-owned live bytes
  std::uint64_t reserved_bytes = 0;      ///< cache-owned allocated bytes
  std::uint64_t resident_peak_bytes = 0; ///< high-water cache-owned bytes
  std::uint64_t segments_spilled = 0;    ///< backend writes (first spills)
  std::uint64_t segments_reloaded = 0;   ///< backend reads during sweeps
  std::uint64_t spilled_bytes = 0;       ///< cumulative bytes written
};

class TapeStorage {
 public:
  virtual ~TapeStorage() = default;

  /// Takes ownership of a sealed segment (recording thread only).
  virtual void seal(SegmentHandle segment) = 0;

  [[nodiscard]] virtual std::size_t num_segments() const noexcept = 0;

  /// Pins segment `index` in memory and returns it, loading it from the
  /// spill backend first if it was evicted.  Thread-safe; concurrent
  /// misses on the same segment share one load.
  [[nodiscard]] virtual SegmentHandle acquire(std::size_t index) const = 0;

  /// Hint that a backward sweep will need `index` soon.  Best-effort and
  /// non-blocking; the resident storage ignores it.
  virtual void prefetch(std::size_t /*index*/) const {}

  /// Drops every segment and all spilled bytes (Tape::reset).
  virtual void clear() = 0;

  [[nodiscard]] virtual TapeStorageStats stats() const = 0;

  /// Diagnostic name, e.g. "resident", "spill(file)".
  [[nodiscard]] virtual std::string name() const = 0;
};

// ---------------------------------------------------------------------------
// ResidentTapeStorage
// ---------------------------------------------------------------------------

/// Everything stays in RAM; acquire() is a shared_ptr copy.  Safe for
/// concurrent acquire() because the segment list is immutable while any
/// sweep runs (seal/clear are recording-thread-only by contract).
class ResidentTapeStorage final : public TapeStorage {
 public:
  void seal(SegmentHandle segment) override {
    peak_bytes_ += segment->resident_bytes();
    segments_.push_back(std::move(segment));
  }

  [[nodiscard]] std::size_t num_segments() const noexcept override {
    return segments_.size();
  }

  [[nodiscard]] SegmentHandle acquire(std::size_t index) const override {
    return segments_.at(index);
  }

  void clear() override {
    segments_.clear();
    peak_bytes_ = 0;
  }

  [[nodiscard]] TapeStorageStats stats() const override;

  [[nodiscard]] std::string name() const override { return "resident"; }

 private:
  std::vector<SegmentHandle> segments_;
  std::uint64_t peak_bytes_ = 0;  // monotone: resident == total here
};

// ---------------------------------------------------------------------------
// SpillingTapeStorage
// ---------------------------------------------------------------------------

class SpillingTapeStorage final : public TapeStorage {
 public:
  struct Options {
    /// Where evicted segments go.  Required.
    std::shared_ptr<ckpt::StorageBackend> backend;
    /// Evict cache-owned segments (coldest first) past this many bytes.
    /// 0 = never evict (degenerates to resident behavior).  Advisory
    /// under concurrency: bytes pinned by in-flight sweep handles are
    /// released only when the handles drop.
    std::uint64_t memory_limit_bytes = 0;
    /// Key namespace on the backend; segment i lands at "<prefix>seg<i>".
    std::string key_prefix = "tape_spill/";
    /// When set, remove_all'd on destruction (the temp-dir factory owns
    /// the directory it created).
    std::filesystem::path cleanup_root;
  };

  explicit SpillingTapeStorage(Options options);

  /// Stops the prefetch thread and best-effort removes every spilled key
  /// (and the owned temp directory, when any).
  ~SpillingTapeStorage() override;

  SpillingTapeStorage(const SpillingTapeStorage&) = delete;
  SpillingTapeStorage& operator=(const SpillingTapeStorage&) = delete;

  /// The common CLI configuration: spill through a FileBackend rooted at
  /// a fresh unique temp directory that this storage owns and removes.
  [[nodiscard]] static std::unique_ptr<SpillingTapeStorage>
  with_temp_file_backend(std::uint64_t memory_limit_bytes);

  void seal(SegmentHandle segment) override;
  [[nodiscard]] std::size_t num_segments() const noexcept override;
  [[nodiscard]] SegmentHandle acquire(std::size_t index) const override;
  void prefetch(std::size_t index) const override;
  void clear() override;
  [[nodiscard]] TapeStorageStats stats() const override;
  [[nodiscard]] std::string name() const override {
    return "spill(" + backend_->name() + ")";
  }

 private:
  struct Entry {
    SegmentHandle data;       ///< null while evicted
    std::uint64_t bytes = 0;  ///< resident_bytes of the segment
    std::uint64_t last_use = 0;
    bool on_backend = false;  ///< the spill write already happened
    bool loading = false;     ///< a reload is in flight (shared, waited on)
    bool spilling = false;    ///< an eviction write is in flight
    bool queued = false;      ///< sitting in the prefetch queue
  };

  [[nodiscard]] std::string key_for(std::size_t index) const;
  void write_segment(std::size_t index, const TapeSegment& segment) const;
  [[nodiscard]] SegmentHandle read_segment(std::size_t index) const;

  /// Installs a loaded segment and wakes waiters (lock held by caller).
  void install_locked(std::size_t index, SegmentHandle segment) const;
  /// Evicts coldest unpinned entries until under budget.  Takes and
  /// releases the lock itself; backend writes happen unlocked.
  void enforce_budget() const;
  void prefetch_loop();

  const std::shared_ptr<ckpt::StorageBackend> backend_;
  const std::uint64_t memory_limit_bytes_;
  const std::string key_prefix_;
  const std::filesystem::path cleanup_root_;

  mutable std::mutex mutex_;
  mutable std::condition_variable loaded_;  ///< an in-flight load finished
  mutable std::condition_variable work_;    ///< prefetch queue non-empty
  mutable std::vector<Entry> entries_;
  mutable std::deque<std::size_t> queue_;
  mutable std::exception_ptr prefetch_error_;
  mutable std::uint64_t use_clock_ = 0;
  mutable std::uint64_t resident_bytes_ = 0;
  mutable std::uint64_t resident_peak_bytes_ = 0;
  mutable std::uint64_t segments_spilled_ = 0;
  mutable std::uint64_t segments_reloaded_ = 0;
  mutable std::uint64_t spilled_bytes_ = 0;
  bool stopping_ = false;

  std::thread prefetch_thread_;
};

}  // namespace scrutiny::ad
