// Variable bindings: how a program exposes its checkpoint state to the
// analyzer.
//
// A binding views the live storage of one checkpointed variable in the
// scalar type the program is currently instantiated with.  Multi-component
// elements (NPB dcomplex) expose components_per_element = 2; the mask the
// analyzer produces is per *element* (a dcomplex element is critical when
// either component has impact), matching the paper's element notion and the
// on-disk element size.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace scrutiny::core {

template <typename T>
struct VarBind {
  std::string name;
  std::span<T> values;  ///< flat component storage; empty for integer vars
  std::uint32_t components_per_element = 1;
  std::uint64_t num_elements = 0;
  std::uint32_t element_size = 8;  ///< bytes per element in a checkpoint
  std::vector<std::uint64_t> shape;  ///< element-granularity, row-major
  bool is_integer = false;

  [[nodiscard]] std::uint64_t num_components() const noexcept {
    return num_elements * components_per_element;
  }

  void validate() const {
    if (is_integer) {
      SCRUTINY_REQUIRE(values.empty(),
                       "integer binding must not carry float storage: " +
                           name);
      SCRUTINY_REQUIRE(num_elements > 0, "empty integer binding: " + name);
    } else {
      SCRUTINY_REQUIRE(values.size() == num_components(),
                       "binding storage size mismatch: " + name);
    }
  }
};

/// Float-array binding helper.
template <typename T>
[[nodiscard]] VarBind<T> bind_array(std::string name, std::span<T> values,
                                    std::vector<std::uint64_t> shape = {}) {
  VarBind<T> bind;
  bind.name = std::move(name);
  bind.values = values;
  bind.num_elements = values.size();
  bind.element_size = 8;
  bind.shape = std::move(shape);
  if (bind.shape.empty()) bind.shape = {bind.num_elements};
  return bind;
}

/// Complex-array binding: `components` views the interleaved (re,im) pairs.
template <typename T>
[[nodiscard]] VarBind<T> bind_complex_array(
    std::string name, std::span<T> components,
    std::vector<std::uint64_t> shape = {}) {
  SCRUTINY_REQUIRE(components.size() % 2 == 0,
                   "complex binding needs even component count");
  VarBind<T> bind;
  bind.name = std::move(name);
  bind.values = components;
  bind.components_per_element = 2;
  bind.num_elements = components.size() / 2;
  bind.element_size = 16;
  bind.shape = std::move(shape);
  if (bind.shape.empty()) bind.shape = {bind.num_elements};
  return bind;
}

/// Scalar binding (span of one).
template <typename T>
[[nodiscard]] VarBind<T> bind_scalar(std::string name, T& value) {
  return bind_array<T>(std::move(name), std::span<T>(&value, 1));
}

/// Integer variable binding (no storage view; criticality by policy).
template <typename T>
[[nodiscard]] VarBind<T> bind_integer(std::string name,
                                      std::uint64_t num_elements,
                                      std::uint32_t element_size = 4,
                                      std::vector<std::uint64_t> shape = {}) {
  VarBind<T> bind;
  bind.name = std::move(name);
  bind.num_elements = num_elements;
  bind.element_size = element_size;
  bind.is_integer = true;
  bind.shape = std::move(shape);
  if (bind.shape.empty()) bind.shape = {num_elements};
  return bind;
}

}  // namespace scrutiny::core
