#include "core/analysis_io.hpp"

#include <utility>
#include <vector>

#include "support/binary_io.hpp"
#include "support/error.hpp"

namespace scrutiny::core {

namespace {

// Plausibility ceilings: a corrupt length field must fail fast instead of
// driving a multi-gigabyte allocation.  The decisive guard is the file
// size itself — no field may promise more payload than the file holds.
constexpr std::uint32_t kMaxVariables = 65536;
constexpr std::uint8_t kMaxDims = 16;

template <typename Enum>
Enum checked_enum(std::uint8_t raw, std::uint8_t max_value,
                  const char* what) {
  SCRUTINY_REQUIRE(raw <= max_value,
                   std::string("invalid ") + what + " in analysis artifact");
  return static_cast<Enum>(raw);
}

}  // namespace

void save_analysis(const std::filesystem::path& path,
                   const AnalysisConfig& config,
                   const AnalysisResult& result) {
  BinaryWriter writer(path);
  writer.write(kAnalysisArtifactMagic);
  writer.write(kAnalysisArtifactVersion);
  writer.write_string(result.program);

  writer.write(static_cast<std::uint8_t>(result.mode));
  writer.write(static_cast<std::uint8_t>(result.sweep));
  writer.write(static_cast<std::int32_t>(config.warmup_steps));
  writer.write(static_cast<std::int32_t>(config.window_steps));
  writer.write(config.threshold);
  writer.write(config.sample_stride);
  writer.write(config.tape_reserve_statements);
  writer.write(static_cast<std::uint8_t>(config.integers_critical_by_type));
  writer.write(static_cast<std::uint8_t>(config.capture_impact));

  writer.write(static_cast<std::uint64_t>(result.num_outputs));
  // Exactly the four historical TapeStats fields.  The segment/spill
  // counters (and tape_memory_limit) are execution diagnostics like
  // `threads`: deliberately NOT persisted, format unchanged.
  writer.write(result.tape_stats.num_statements);
  writer.write(result.tape_stats.num_arguments);
  writer.write(result.tape_stats.num_inputs);
  writer.write(result.tape_stats.memory_bytes);
  writer.write(result.record_seconds);
  writer.write(result.sweep_seconds);
  writer.write(result.harvest_seconds);
  writer.write(result.total_seconds);
  writer.write(static_cast<std::uint64_t>(result.sweep_passes));

  writer.write(static_cast<std::uint32_t>(result.variables.size()));
  for (const VariableCriticality& variable : result.variables) {
    writer.write_string(variable.name);
    writer.write(static_cast<std::uint8_t>(variable.is_integer));
    writer.write(variable.element_size);
    writer.write(static_cast<std::uint8_t>(variable.shape.size()));
    for (const std::uint64_t dim : variable.shape) writer.write(dim);
    writer.write(static_cast<std::uint64_t>(variable.mask.size()));
    writer.write_span(std::span<const std::uint64_t>(variable.mask.words()));
    const bool has_impact = !variable.impact.empty();
    SCRUTINY_REQUIRE(!has_impact ||
                         variable.impact.size() == variable.mask.size(),
                     "impact vector size does not match mask: " +
                         variable.name);
    writer.write(static_cast<std::uint8_t>(has_impact));
    if (has_impact) {
      writer.write_span(std::span<const double>(variable.impact));
    }
  }

  const std::uint64_t crc = writer.crc();
  writer.write(crc);
  writer.commit();
}

AnalysisArtifact load_analysis(const std::filesystem::path& path) {
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  SCRUTINY_REQUIRE(!ec, "cannot stat analysis artifact: " + path.string());

  BinaryReader reader(path);
  // A corrupt length field must throw before it drives an allocation: no
  // field may claim more payload than the file has bytes left.
  auto require_remaining = [&](std::uint64_t bytes) {
    SCRUTINY_REQUIRE(bytes <= file_size - reader.bytes_read(),
                     "analysis artifact field exceeds file size "
                     "(truncated or corrupt): " + path.string());
  };

  const auto magic = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(magic == kAnalysisArtifactMagic,
                   "not a scrutiny analysis artifact: " + path.string());
  const auto version = reader.read<std::uint32_t>();
  SCRUTINY_REQUIRE(
      version == kAnalysisArtifactVersion,
      "unsupported analysis artifact version " + std::to_string(version) +
          " (this build reads version " +
          std::to_string(kAnalysisArtifactVersion) + "): " + path.string());

  AnalysisArtifact artifact;
  AnalysisConfig& config = artifact.config;
  AnalysisResult& result = artifact.result;

  result.program = reader.read_string();
  result.mode = checked_enum<AnalysisMode>(
      reader.read<std::uint8_t>(),
      static_cast<std::uint8_t>(AnalysisMode::FiniteDiff), "analysis mode");
  result.sweep = checked_enum<ad::SweepKind>(
      reader.read<std::uint8_t>(),
      static_cast<std::uint8_t>(ad::SweepKind::Bitset), "sweep kind");
  config.mode = result.mode;
  config.sweep = result.sweep;
  config.warmup_steps = reader.read<std::int32_t>();
  config.window_steps = reader.read<std::int32_t>();
  config.threshold = reader.read<double>();
  config.sample_stride = reader.read<std::uint64_t>();
  config.tape_reserve_statements = reader.read<std::uint64_t>();
  config.integers_critical_by_type = reader.read<std::uint8_t>() != 0;
  config.capture_impact = reader.read<std::uint8_t>() != 0;

  result.num_outputs =
      static_cast<std::size_t>(reader.read<std::uint64_t>());
  result.tape_stats.num_statements = reader.read<std::uint64_t>();
  result.tape_stats.num_arguments = reader.read<std::uint64_t>();
  result.tape_stats.num_inputs = reader.read<std::uint64_t>();
  result.tape_stats.memory_bytes = reader.read<std::uint64_t>();
  result.record_seconds = reader.read<double>();
  result.sweep_seconds = reader.read<double>();
  result.harvest_seconds = reader.read<double>();
  result.total_seconds = reader.read<double>();
  result.sweep_passes =
      static_cast<std::size_t>(reader.read<std::uint64_t>());

  const auto num_variables = reader.read<std::uint32_t>();
  SCRUTINY_REQUIRE(num_variables <= kMaxVariables,
                   "implausible variable count in " + path.string());
  result.variables.reserve(num_variables);
  for (std::uint32_t v = 0; v < num_variables; ++v) {
    VariableCriticality variable;
    variable.name = reader.read_string();
    variable.is_integer = reader.read<std::uint8_t>() != 0;
    variable.element_size = reader.read<std::uint32_t>();
    const auto ndim = reader.read<std::uint8_t>();
    SCRUTINY_REQUIRE(ndim <= kMaxDims,
                     "implausible dimension count in " + path.string());
    variable.shape.resize(ndim);
    for (std::uint64_t& dim : variable.shape) {
      dim = reader.read<std::uint64_t>();
    }
    const auto num_elements = reader.read<std::uint64_t>();
    require_remaining(num_elements / 64 * 8);  // overflow-safe word bytes
    std::vector<std::uint64_t> words((num_elements + 63) / 64);
    reader.read_span(std::span<std::uint64_t>(words));
    variable.mask = CriticalMask::from_words(
        static_cast<std::size_t>(num_elements), std::move(words));
    if (reader.read<std::uint8_t>() != 0) {
      require_remaining(num_elements * 8);
      variable.impact.resize(static_cast<std::size_t>(num_elements));
      reader.read_span(std::span<double>(variable.impact));
    }
    result.variables.push_back(std::move(variable));
  }

  const std::uint64_t computed = reader.crc();
  const auto stored = reader.read<std::uint64_t>();
  SCRUTINY_REQUIRE(stored == computed,
                   "analysis artifact CRC mismatch (corrupt file): " +
                       path.string());
  SCRUTINY_REQUIRE(reader.at_eof(),
                   "trailing bytes after analysis artifact: " +
                       path.string());
  return artifact;
}

}  // namespace scrutiny::core
