#include "core/impact.hpp"

#include <algorithm>
#include <vector>

#include "support/error.hpp"

namespace scrutiny::core {

ImpactPartition partition_by_impact(const VariableCriticality& variable,
                                    double low_fraction) {
  SCRUTINY_REQUIRE(!variable.impact.empty(),
                   "impact data not captured for " + variable.name +
                       " (set AnalysisConfig::capture_impact)");
  SCRUTINY_REQUIRE(low_fraction >= 0.0 && low_fraction <= 1.0,
                   "low_fraction must be in [0,1]");

  std::vector<double> critical_impacts;
  critical_impacts.reserve(variable.mask.count_critical());
  for (std::size_t e = 0; e < variable.mask.size(); ++e) {
    if (variable.mask.test(e)) critical_impacts.push_back(variable.impact[e]);
  }

  ImpactPartition partition;
  partition.low_impact = CriticalMask(variable.mask.size(), false);
  if (critical_impacts.empty()) return partition;

  const auto cut = static_cast<std::size_t>(
      low_fraction * static_cast<double>(critical_impacts.size()));
  if (cut == 0) {
    partition.num_high = critical_impacts.size();
    return partition;
  }
  std::nth_element(critical_impacts.begin(),
                   critical_impacts.begin() + (cut - 1),
                   critical_impacts.end());
  partition.impact_threshold = critical_impacts[cut - 1];

  for (std::size_t e = 0; e < variable.mask.size(); ++e) {
    if (!variable.mask.test(e)) continue;
    if (variable.impact[e] <= partition.impact_threshold &&
        partition.num_low < cut) {
      partition.low_impact.set(e, true);
      ++partition.num_low;
    } else {
      ++partition.num_high;
    }
  }
  return partition;
}

}  // namespace scrutiny::core
