// Types shared by the criticality analyzer and its consumers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ad/adjoint_models.hpp"
#include "ad/sweep_kernels.hpp"
#include "ad/tape.hpp"
#include "ckpt/checkpoint_io.hpp"
#include "ckpt/storage_backend.hpp"
#include "mask/critical_mask.hpp"

namespace scrutiny::core {

/// How element criticality is decided.
enum class AnalysisMode : std::uint8_t {
  ReverseAD,   ///< the paper's method: one reverse sweep per output
  ForwardAD,   ///< one dual-number run per element (ablation baseline)
  ReadSet,     ///< "was the checkpointed value ever consumed" activity
  FiniteDiff,  ///< central differences, two reruns per element
};

[[nodiscard]] constexpr const char* analysis_mode_name(AnalysisMode mode) {
  switch (mode) {
    case AnalysisMode::ReverseAD: return "reverse-ad";
    case AnalysisMode::ForwardAD: return "forward-ad";
    case AnalysisMode::ReadSet: return "read-set";
    case AnalysisMode::FiniteDiff: return "finite-diff";
  }
  return "?";
}

struct AnalysisConfig {
  AnalysisMode mode = AnalysisMode::ReverseAD;

  /// ReverseAD only: which adjoint model the reverse sweep runs on.
  ///   vector — all outputs in blocked single passes (the default)
  ///   scalar — one pass per output (the pre-vector behavior, ablation)
  ///   bitset — dependency bits, threshold-0 activity, no magnitudes
  /// Vector reproduces scalar masks bit-for-bit (same accumulation order
  /// per lane); bitset additionally requires threshold == 0 and rejects
  /// capture_impact.
  ad::SweepKind sweep = ad::SweepKind::Vector;

  /// Steps run before the checkpoint is (conceptually) taken.
  int warmup_steps = 0;

  /// Post-checkpoint steps the analysis covers.  Criticality is defined
  /// over this window plus the output/verification computation; NPB access
  /// patterns are iteration-stationary, so one window step already exposes
  /// the paper's read sets (larger windows can only add critical elements).
  int window_steps = 1;

  /// |derivative| must exceed this to count as "impact".  0 = any nonzero,
  /// the paper's criterion.
  double threshold = 0.0;

  /// ForwardAD/FiniteDiff: probe every `sample_stride`-th element; skipped
  /// elements are conservatively marked critical.
  std::uint64_t sample_stride = 1;

  /// Optional tape pre-sizing (statements); 0 = grow on demand.
  std::uint64_t tape_reserve_statements = 0;

  /// Non-differentiable integer variables are critical by policy (the
  /// paper's treatment of loop indices and sort keys).
  bool integers_critical_by_type = true;

  /// ReverseAD only: also accumulate per-element |adjoint| magnitudes —
  /// the impact ranking behind the paper's future-work idea of storing
  /// low-impact elements in lower precision.
  bool capture_impact = false;

  /// ReverseAD only: worker threads for the blocked reverse sweep.
  /// 0 = all hardware threads, 1 = the serial in-place sweep (default).
  /// Masks and impact are bit-identical for every value: the parallel
  /// scheduler keeps the serial blocking, assigns blocks to workers with
  /// a fixed contiguous split, and merges worker-private accumulators
  /// with an order-independent OR/max reduction (ad/parallel_sweep.hpp).
  /// An execution parameter, not an analysis semantic: deliberately NOT
  /// persisted in .scmask artifacts.
  std::uint32_t threads = 1;

  /// ReverseAD only: byte budget for the recorded tape's sealed segments.
  /// 0 = unlimited, the fully-resident tape (default).  Nonzero: the tape
  /// records into fixed-capacity segments and spills cold ones through a
  /// storage backend, reloading (with background prefetch) during the
  /// reverse sweep.  Segment boundaries depend only on statement count,
  /// so masks/impact/sweep_passes are bit-identical for every limit — an
  /// execution parameter like `threads`, NOT persisted in .scmask.
  std::uint64_t tape_memory_limit = 0;

  /// Where spilled tape segments go when tape_memory_limit is set:
  /// File = a throwaway temp directory (removed when analysis ends),
  /// Memory = an in-process store (tests; still bounds the tape arrays).
  ckpt::BackendKind tape_spill_backend = ckpt::BackendKind::File;

  /// ReverseAD only: which sweep kernel table the tape dispatches to.
  /// Auto = runtime CPU dispatch (native SIMD unless
  /// SCRUTINY_FORCE_SCALAR_KERNELS pins the fallback), Scalar = the
  /// portable fallback, Simd = the native table.  Every kernel computes
  /// bit-identical masks/impact/sweep_passes, so this is an execution
  /// parameter like `threads` — NOT persisted in .scmask artifacts.
  ad::KernelChoice kernel = ad::KernelChoice::Auto;
};

/// Criticality verdict for one checkpointed variable.
struct VariableCriticality {
  std::string name;
  std::vector<std::uint64_t> shape;  ///< element-granularity shape
  std::uint32_t element_size = 0;    ///< bytes per element on disk
  bool is_integer = false;
  CriticalMask mask;                 ///< bit per element, set = critical

  /// Present when AnalysisConfig::capture_impact: Σ_outputs |∂out/∂elem|
  /// (max over the components of a multi-component element).
  std::vector<double> impact;

  [[nodiscard]] std::size_t total_elements() const noexcept {
    return mask.size();
  }
  [[nodiscard]] std::size_t uncritical_elements() const noexcept {
    return mask.count_uncritical();
  }
  [[nodiscard]] double uncritical_rate() const noexcept {
    return mask.uncritical_rate();
  }
};

struct AnalysisResult {
  std::string program;
  AnalysisMode mode = AnalysisMode::ReverseAD;
  ad::SweepKind sweep = ad::SweepKind::Vector;  ///< ReverseAD only
  std::vector<VariableCriticality> variables;
  std::size_t num_outputs = 0;
  ad::TapeStats tape_stats;   ///< ReverseAD only
  double record_seconds = 0.0;
  /// Table II's sweep cost.  Serial (threads == 1): pure
  /// reverse-traversal time summed over all passes, harvesting excluded.
  /// Parallel: wall time of the whole sweep region (workers harvest
  /// inline, so sweep_seconds + harvest_seconds stays the end-to-end
  /// sweep-phase cost in both cases).
  double sweep_seconds = 0.0;
  /// Time folding adjoints into per-element masks/impact.  Serial: the
  /// in-place harvest loops.  Parallel: the final deterministic merge of
  /// the worker-private accumulators (per-worker harvesting overlaps the
  /// sweep and is inside sweep_seconds).
  double harvest_seconds = 0.0;
  /// Number of reverse passes over the tape: num_outputs for the scalar
  /// sweep, ceil(num_outputs / lane_width) for vector/bitset.  Invariant
  /// across thread counts (the parallel sweep partitions the serial
  /// blocks, it never re-blocks).
  std::size_t sweep_passes = 0;
  double total_seconds = 0.0;
  /// ReverseAD only: sweep workers actually used.  min(requested, blocks)
  /// — a 5-output scalar sweep can keep at most 5 workers busy, and the
  /// 8-lane vector sweep of the same outputs only 1.
  std::size_t threads = 1;
  /// Σ worker busy seconds / (threads × sweep wall seconds); 1.0 for the
  /// serial path.  Small values mean starved (few blocks) or
  /// oversubscribed (threads > cores) workers.
  double parallel_efficiency = 1.0;
  /// The tape byte budget this analysis ran under (0 = unlimited).  Like
  /// `threads`, an execution echo — NOT persisted in .scmask artifacts;
  /// the spill/reload counters live in tape_stats.
  std::uint64_t tape_memory_limit = 0;
  /// ReverseAD only: the resolved sweep kernel table name ("scalar",
  /// "sse2", "avx2", "avx512", "neon").  An execution echo like
  /// `threads` — NOT persisted in .scmask artifacts.
  std::string kernel_name;

  [[nodiscard]] const VariableCriticality* find(
      const std::string& name) const {
    for (const VariableCriticality& v : variables) {
      if (v.name == name) return &v;
    }
    return nullptr;
  }

  /// Masks in the form the pruned checkpoint writer consumes.
  [[nodiscard]] ckpt::PruneMap to_prune_map() const {
    ckpt::PruneMap map;
    for (const VariableCriticality& v : variables) map[v.name] = v.mask;
    return map;
  }
};

}  // namespace scrutiny::core
