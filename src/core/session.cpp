#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "ckpt/failure.hpp"
#include "ckpt/file_backend.hpp"
#include "ckpt/registry.hpp"
#include "core/analysis_io.hpp"
#include "mask/region.hpp"
#include "support/error.hpp"

namespace scrutiny::core {

namespace {

bool all_close(const std::vector<double>& a, const std::vector<double>& b,
               double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) return false;
    const double scale = std::max({1.0, std::fabs(a[i]), std::fabs(b[i])});
    if (std::fabs(a[i] - b[i]) > tol * scale) return false;
  }
  return true;
}

}  // namespace

ScrutinySession::ScrutinySession(const AnyProgram& program)
    : program_(&program) {
  SCRUTINY_REQUIRE(program.valid(), "session over an empty program handle");
}

ScrutinySession ScrutinySession::open(std::string_view program_name) {
  return ScrutinySession(ProgramRegistry::global().get(program_name));
}

void ScrutinySession::use_storage(
    std::shared_ptr<ckpt::StorageBackend> backend) {
  SCRUTINY_REQUIRE(backend != nullptr, "session needs a storage backend");
  storage_ = std::move(backend);
}

ckpt::StorageBackend& ScrutinySession::storage() const {
  if (storage_ == nullptr) {
    storage_ = std::make_shared<ckpt::FileBackend>();
  }
  return *storage_;
}

// ---------------------------------------------------------------------------
// analysis cache
// ---------------------------------------------------------------------------

const AnalysisResult& ScrutinySession::analyze(const AnalysisConfig& cfg) {
  analysis_ = program_->analyze(cfg);
  config_ = cfg;
  analysis_loaded_ = false;
  return *analysis_;
}

const AnalysisResult& ScrutinySession::analyze() {
  return analyze(program_->default_config());
}

const AnalysisResult& ScrutinySession::use_analysis(AnalysisResult result) {
  config_ = program_->default_config(result.mode);
  analysis_ = std::move(result);
  analysis_loaded_ = false;
  return *analysis_;
}

const AnalysisResult& ScrutinySession::load_analysis(
    const std::filesystem::path& path) {
  AnalysisArtifact artifact = core::load_analysis(path);
  SCRUTINY_REQUIRE(artifact.result.program == program_->name(),
                   "analysis artifact " + path.string() + " was produced "
                   "for program " + artifact.result.program + ", not " +
                   program_->name());
  config_ = artifact.config;
  analysis_ = std::move(artifact.result);
  analysis_loaded_ = true;
  return *analysis_;
}

void ScrutinySession::save_analysis(
    const std::filesystem::path& path) const {
  core::save_analysis(path, analysis_config(), analysis());
}

const AnalysisResult& ScrutinySession::analysis() const {
  SCRUTINY_REQUIRE(analysis_.has_value(),
                   "no analysis on this session yet: call analyze() or "
                   "load_analysis() first");
  return *analysis_;
}

const AnalysisConfig& ScrutinySession::analysis_config() const {
  SCRUTINY_REQUIRE(config_.has_value(),
                   "no analysis on this session yet: call analyze() or "
                   "load_analysis() first");
  return *config_;
}

int ScrutinySession::warmup_steps() const {
  return analysis_config().warmup_steps;
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

CheckpointPlan ScrutinySession::plan() const {
  const AnalysisResult& result = analysis();
  CheckpointPlan plan;
  plan.program = result.program;
  plan.prune_map = result.to_prune_map();
  for (const VariableCriticality& variable : result.variables) {
    CheckpointPlan::Variable row;
    row.name = variable.name;
    row.total_elements = variable.total_elements();
    row.critical_elements = variable.mask.count_critical();
    row.full_bytes = row.total_elements * variable.element_size;
    const RegionList regions = RegionList::from_mask(variable.mask);
    row.pruned_bytes = regions.covered_elements() * variable.element_size;
    row.region_bytes = regions.serialized_bytes();
    plan.full_payload_bytes += row.full_bytes;
    plan.pruned_payload_bytes += row.pruned_bytes;
    plan.region_metadata_bytes += row.region_bytes;
    plan.variables.push_back(std::move(row));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// pipeline legs
// ---------------------------------------------------------------------------

ckpt::WriteReport ScrutinySession::write_checkpoint(
    const std::filesystem::path& file) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();

  const auto app = program_->make_primal();
  app->init();
  for (int s = 0; s < warmup; ++s) app->step();
  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);
  const ckpt::WriteReport report =
      ckpt::write_checkpoint(storage(), file.string(), registry,
                             static_cast<std::uint64_t>(warmup), &masks);
  ckpt::save_regions_sidecar(storage(), file.string(), registry, masks);
  return report;
}

std::vector<double> ScrutinySession::restart(
    const std::filesystem::path& file) const {
  const auto app = program_->make_primal();
  app->init();
  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);
  ckpt::FailureInjector injector;
  injector.poison_all(registry);
  const ckpt::RestoreReport report =
      ckpt::restore_checkpoint(storage(), file.string(), registry);
  const int total_steps = app->total_steps();
  for (int s = static_cast<int>(report.step); s < total_steps; ++s) {
    app->step();
  }
  return app->outputs();
}

std::vector<double> ScrutinySession::golden_outputs() const {
  const auto app = program_->make_primal();
  app->init();
  const int total_steps = app->total_steps();
  for (int s = 0; s < total_steps; ++s) app->step();
  return app->outputs();
}

StorageComparison ScrutinySession::compare_storage(
    const std::filesystem::path& dir) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();

  const auto app = program_->make_primal();
  app->init();
  for (int s = 0; s < warmup; ++s) app->step();

  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);

  const std::string full_key =
      (dir / (program_->name() + "_full.ckpt")).string();
  const std::string pruned_key =
      (dir / (program_->name() + "_pruned.ckpt")).string();

  const ckpt::WriteReport full = ckpt::write_checkpoint(
      storage(), full_key, registry, static_cast<std::uint64_t>(warmup));
  const ckpt::WriteReport pruned =
      ckpt::write_checkpoint(storage(), pruned_key, registry,
                             static_cast<std::uint64_t>(warmup), &masks);
  ckpt::save_regions_sidecar(storage(), pruned_key, registry, masks);

  StorageComparison comparison;
  comparison.program = program_->name();
  comparison.payload_full = full.payload_bytes;
  comparison.payload_pruned = pruned.payload_bytes;
  comparison.file_full = full.file_bytes;
  comparison.file_pruned = pruned.file_bytes;
  comparison.aux_bytes = pruned.aux_bytes;
  comparison.elements_skipped = pruned.elements_skipped;
  comparison.seconds_full = full.seconds;
  comparison.seconds_pruned = pruned.seconds;
  return comparison;
}

RestartVerification ScrutinySession::verify_restart(
    const std::filesystem::path& dir) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();
  const ProgramTraits& traits = program_->traits();
  const double tol = traits.verify_tolerance;

  RestartVerification verification;
  const std::string key =
      (dir / (program_->name() + "_restart.ckpt")).string();

  // Uninterrupted reference run.
  verification.golden = golden_outputs();

  // Run to the checkpoint step and persist only critical elements.
  int total_steps = 0;
  std::string corrupt_variable = traits.verify_corrupt_variable;
  {
    const auto writer = program_->make_primal();
    writer->init();
    for (int s = 0; s < warmup; ++s) writer->step();
    total_steps = writer->total_steps();
    ckpt::CheckpointRegistry registry;
    writer->register_checkpoint(registry);
    if (corrupt_variable.empty() && !registry.variables().empty()) {
      corrupt_variable = registry.variables().front().name;
    }
    ckpt::write_checkpoint(storage(), key, registry,
                           static_cast<std::uint64_t>(warmup), &masks);
  }

  // Failure: a fresh process re-initializes, all checkpointed memory is
  // poisoned, and only critical regions come back from the file.
  verification.restarted = restart(key);
  verification.pruned_restart_matches =
      all_close(verification.golden, verification.restarted, tol);

  // Negative control: additionally corrupt critical elements — the run
  // must NOT reproduce the reference outputs.  Some solvers abort outright
  // on poisoned critical state (e.g. BT's block factorization rejects NaN
  // pivots); an exception is also a successful detection.
  try {
    const auto corrupted = program_->make_primal();
    corrupted->init();
    ckpt::CheckpointRegistry registry;
    corrupted->register_checkpoint(registry);
    ckpt::FailureInjector injector;
    injector.poison_all(registry);
    const ckpt::RestoreReport report =
        ckpt::restore_checkpoint(storage(), key, registry);
    injector.corrupt_critical(registry, masks, corrupt_variable, 16);
    for (int s = static_cast<int>(report.step); s < total_steps; ++s) {
      corrupted->step();
    }
    verification.corrupted = corrupted->outputs();
    verification.negative_control_detected =
        !all_close(verification.golden, verification.corrupted, tol);
  } catch (const ScrutinyError&) {
    verification.negative_control_detected = true;
  }
  return verification;
}

}  // namespace scrutiny::core
