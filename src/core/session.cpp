#include "core/session.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "ckpt/failure.hpp"
#include "ckpt/file_backend.hpp"
#include "ckpt/manager.hpp"
#include "ckpt/registry.hpp"
#include "core/analysis_io.hpp"
#include "mask/region.hpp"
#include "support/error.hpp"

namespace scrutiny::core {

namespace {

bool all_close(const std::vector<double>& a, const std::vector<double>& b,
               double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) return false;
    const double scale = std::max({1.0, std::fabs(a[i]), std::fabs(b[i])});
    if (std::fabs(a[i] - b[i]) > tol * scale) return false;
  }
  return true;
}

/// The codec verify gate: every write-set element of every registered
/// variable must match `image` (the writer's memory at the checkpointed
/// step) bit-exactly — except elements a lossy plan demoted, which must
/// round-trip within their precision tolerance.  Uncritical elements are
/// outside the write set and stay whatever the failure left them.
bool restored_state_within(
    const ckpt::CheckpointRegistry& registry,
    const std::map<std::string, std::vector<std::byte>>& image,
    const ckpt::PruneMap& masks, const ckpt::LossyMap& lossy) {
  for (const ckpt::VariableInfo& variable : registry.variables()) {
    const auto want_it = image.find(variable.name);
    if (want_it == image.end()) return false;
    const std::span<std::byte> got = variable.bytes();
    if (want_it->second.size() != got.size()) return false;
    const CriticalMask* mask = nullptr;
    if (const auto m = masks.find(variable.name); m != masks.end()) {
      mask = &m->second;
    }
    const ckpt::LossyPlan* plan = nullptr;
    if (const auto p = lossy.find(variable.name); p != lossy.end()) {
      plan = &p->second;
    }
    const std::uint32_t elem = variable.element_size();
    for (std::uint64_t e = 0; e < variable.num_elements; ++e) {
      if (mask != nullptr && !mask->test(e)) continue;
      const std::byte* got_elem = got.data() + e * elem;
      const std::byte* want_elem = want_it->second.data() + e * elem;
      if (plan != nullptr && plan->low.test(e)) {
        double got_value = 0.0;
        double want_value = 0.0;
        std::memcpy(&got_value, got_elem, sizeof(double));
        std::memcpy(&want_value, want_elem, sizeof(double));
        if (std::isnan(got_value) != std::isnan(want_value)) return false;
        if (std::isnan(got_value)) continue;
        const double tol = ckpt::lossy_precision_tolerance(plan->precision);
        const double scale = std::max(1.0, std::fabs(want_value));
        if (std::fabs(got_value - want_value) > tol * scale) return false;
      } else if (std::memcmp(got_elem, want_elem, elem) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

ScrutinySession::ScrutinySession(const AnyProgram& program)
    : program_(&program) {
  SCRUTINY_REQUIRE(program.valid(), "session over an empty program handle");
}

ScrutinySession ScrutinySession::open(std::string_view program_name) {
  return ScrutinySession(ProgramRegistry::global().get(program_name));
}

void ScrutinySession::use_storage(
    std::shared_ptr<ckpt::StorageBackend> backend) {
  SCRUTINY_REQUIRE(backend != nullptr, "session needs a storage backend");
  storage_ = std::move(backend);
}

void ScrutinySession::use_storage(const ckpt::BackendSpec& spec) {
  use_storage(std::shared_ptr<ckpt::StorageBackend>(ckpt::make_backend(spec)));
}

ckpt::StorageBackend& ScrutinySession::storage() const {
  if (storage_ == nullptr) {
    storage_ = std::make_shared<ckpt::FileBackend>();
  }
  return *storage_;
}

std::shared_ptr<ckpt::StorageBackend> ScrutinySession::storage_shared()
    const {
  (void)storage();  // materialize the file default on first use
  return storage_;
}

// ---------------------------------------------------------------------------
// analysis cache
// ---------------------------------------------------------------------------

const AnalysisResult& ScrutinySession::analyze(const AnalysisConfig& cfg) {
  analysis_ = program_->analyze(cfg);
  config_ = cfg;
  analysis_loaded_ = false;
  return *analysis_;
}

const AnalysisResult& ScrutinySession::analyze() {
  return analyze(program_->default_config());
}

const AnalysisResult& ScrutinySession::use_analysis(AnalysisResult result) {
  config_ = program_->default_config(result.mode);
  analysis_ = std::move(result);
  analysis_loaded_ = false;
  return *analysis_;
}

const AnalysisResult& ScrutinySession::load_analysis(
    const std::filesystem::path& path) {
  AnalysisArtifact artifact = core::load_analysis(path);
  SCRUTINY_REQUIRE(artifact.result.program == program_->name(),
                   "analysis artifact " + path.string() + " was produced "
                   "for program " + artifact.result.program + ", not " +
                   program_->name());
  config_ = artifact.config;
  analysis_ = std::move(artifact.result);
  analysis_loaded_ = true;
  return *analysis_;
}

void ScrutinySession::save_analysis(
    const std::filesystem::path& path) const {
  core::save_analysis(path, analysis_config(), analysis());
}

const AnalysisResult& ScrutinySession::analysis() const {
  SCRUTINY_REQUIRE(analysis_.has_value(),
                   "no analysis on this session yet: call analyze() or "
                   "load_analysis() first");
  return *analysis_;
}

const AnalysisConfig& ScrutinySession::analysis_config() const {
  SCRUTINY_REQUIRE(config_.has_value(),
                   "no analysis on this session yet: call analyze() or "
                   "load_analysis() first");
  return *config_;
}

int ScrutinySession::warmup_steps() const {
  return analysis_config().warmup_steps;
}

std::string ScrutinySession::object_key(const std::filesystem::path& dir,
                                        const std::string& filename) const {
  if (storage().hierarchical_keys()) return (dir / filename).string();
  // Flat keyspace (the remote daemon's store rejects '/'): fold the
  // directory into the name so `dir` still namespaces the objects, and
  // trim leading separators an absolute dir would leave behind.
  std::string flat = (dir / filename).generic_string();
  for (char& c : flat) {
    if (c == '/') c = '.';
  }
  return flat.substr(flat.find_first_not_of('.'));
}

// ---------------------------------------------------------------------------
// plan
// ---------------------------------------------------------------------------

CheckpointPlan ScrutinySession::plan() const {
  const AnalysisResult& result = analysis();
  CheckpointPlan plan;
  plan.program = result.program;
  plan.prune_map = result.to_prune_map();
  for (const VariableCriticality& variable : result.variables) {
    CheckpointPlan::Variable row;
    row.name = variable.name;
    row.total_elements = variable.total_elements();
    row.critical_elements = variable.mask.count_critical();
    row.full_bytes = row.total_elements * variable.element_size;
    const RegionList regions = RegionList::from_mask(variable.mask);
    row.pruned_bytes = regions.covered_elements() * variable.element_size;
    row.region_bytes = regions.serialized_bytes();
    plan.full_payload_bytes += row.full_bytes;
    plan.pruned_payload_bytes += row.pruned_bytes;
    plan.region_metadata_bytes += row.region_bytes;
    plan.variables.push_back(std::move(row));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// pipeline legs
// ---------------------------------------------------------------------------

ckpt::WriteReport ScrutinySession::write_checkpoint(
    const std::filesystem::path& file) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();

  const auto app = program_->make_primal();
  app->init();
  for (int s = 0; s < warmup; ++s) app->step();
  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);
  const ckpt::WriteReport report =
      ckpt::write_checkpoint(storage(), file.string(), registry,
                             static_cast<std::uint64_t>(warmup), &masks);
  ckpt::save_regions_sidecar(storage(), file.string(), registry, masks);
  return report;
}

std::vector<double> ScrutinySession::restart(
    const std::filesystem::path& file) const {
  const auto app = program_->make_primal();
  app->init();
  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);
  ckpt::FailureInjector injector;
  injector.poison_all(registry);
  const ckpt::RestoreReport report =
      ckpt::restore_checkpoint(storage(), file.string(), registry);
  const int total_steps = app->total_steps();
  for (int s = static_cast<int>(report.step); s < total_steps; ++s) {
    app->step();
  }
  return app->outputs();
}

std::vector<double> ScrutinySession::golden_outputs() const {
  const auto app = program_->make_primal();
  app->init();
  const int total_steps = app->total_steps();
  for (int s = 0; s < total_steps; ++s) app->step();
  return app->outputs();
}

StorageComparison ScrutinySession::compare_storage(
    const std::filesystem::path& dir) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();

  const auto app = program_->make_primal();
  app->init();
  for (int s = 0; s < warmup; ++s) app->step();

  ckpt::CheckpointRegistry registry;
  app->register_checkpoint(registry);

  const std::string full_key =
      object_key(dir, program_->name() + "_full.ckpt");
  const std::string pruned_key =
      object_key(dir, program_->name() + "_pruned.ckpt");

  const ckpt::WriteReport full = ckpt::write_checkpoint(
      storage(), full_key, registry, static_cast<std::uint64_t>(warmup));
  const ckpt::WriteReport pruned =
      ckpt::write_checkpoint(storage(), pruned_key, registry,
                             static_cast<std::uint64_t>(warmup), &masks);
  ckpt::save_regions_sidecar(storage(), pruned_key, registry, masks);

  StorageComparison comparison;
  comparison.program = program_->name();
  comparison.payload_full = full.payload_bytes;
  comparison.payload_pruned = pruned.payload_bytes;
  comparison.file_full = full.file_bytes;
  comparison.file_pruned = pruned.file_bytes;
  comparison.aux_bytes = pruned.aux_bytes;
  comparison.elements_skipped = pruned.elements_skipped;
  comparison.seconds_full = full.seconds;
  comparison.seconds_pruned = pruned.seconds;
  return comparison;
}

RestartVerification ScrutinySession::verify_restart(
    const std::filesystem::path& dir) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();
  const ProgramTraits& traits = program_->traits();
  const double tol = traits.verify_tolerance;

  RestartVerification verification;
  const std::string key =
      object_key(dir, program_->name() + "_restart.ckpt");

  // Uninterrupted reference run.
  verification.golden = golden_outputs();

  // Run to the checkpoint step and persist only critical elements.
  int total_steps = 0;
  std::string corrupt_variable = traits.verify_corrupt_variable;
  {
    const auto writer = program_->make_primal();
    writer->init();
    for (int s = 0; s < warmup; ++s) writer->step();
    total_steps = writer->total_steps();
    ckpt::CheckpointRegistry registry;
    writer->register_checkpoint(registry);
    if (corrupt_variable.empty() && !registry.variables().empty()) {
      corrupt_variable = registry.variables().front().name;
    }
    ckpt::write_checkpoint(storage(), key, registry,
                           static_cast<std::uint64_t>(warmup), &masks);
  }

  // Failure: a fresh process re-initializes, all checkpointed memory is
  // poisoned, and only critical regions come back from the file.
  verification.restarted = restart(key);
  verification.pruned_restart_matches =
      all_close(verification.golden, verification.restarted, tol);

  // Negative control: additionally corrupt critical elements — the run
  // must NOT reproduce the reference outputs.  Some solvers abort outright
  // on poisoned critical state (e.g. BT's block factorization rejects NaN
  // pivots); an exception is also a successful detection.
  try {
    const auto corrupted = program_->make_primal();
    corrupted->init();
    ckpt::CheckpointRegistry registry;
    corrupted->register_checkpoint(registry);
    ckpt::FailureInjector injector;
    injector.poison_all(registry);
    const ckpt::RestoreReport report =
        ckpt::restore_checkpoint(storage(), key, registry);
    injector.corrupt_critical(registry, masks, corrupt_variable, 16);
    for (int s = static_cast<int>(report.step); s < total_steps; ++s) {
      corrupted->step();
    }
    verification.corrupted = corrupted->outputs();
    verification.negative_control_detected =
        !all_close(verification.golden, verification.corrupted, tol);
  } catch (const ScrutinyError&) {
    verification.negative_control_detected = true;
  }
  return verification;
}

// ---------------------------------------------------------------------------
// codec-aware legs
// ---------------------------------------------------------------------------

bool ScrutinySession::impact_available() const {
  for (const VariableCriticality& variable : analysis().variables) {
    if (variable.is_integer || variable.element_size != 8) continue;
    if (variable.impact.size() == variable.total_elements()) return true;
  }
  return false;
}

ckpt::LossyMap ScrutinySession::lossy_map(
    const ckpt::CodecConfig& codec) const {
  SCRUTINY_REQUIRE(
      impact_available(),
      "lossy codecs rank elements by per-element impact, which this "
      "analysis did not capture: re-run the sweep with capture_impact "
      "(CLI: --impact) or load an artifact that recorded it");
  ckpt::LossyMap map;
  for (const VariableCriticality& variable : analysis().variables) {
    if (variable.is_integer || variable.element_size != 8) continue;
    if (variable.impact.size() != variable.total_elements()) continue;
    std::vector<std::size_t> critical;
    for (std::size_t e = 0; e < variable.total_elements(); ++e) {
      if (variable.mask.test(e)) critical.push_back(e);
    }
    if (critical.empty()) continue;
    // Rank by |impact|, ties by index: the demoted set is deterministic.
    std::stable_sort(critical.begin(), critical.end(),
                     [&](std::size_t a, std::size_t b) {
                       return std::fabs(variable.impact[a]) <
                              std::fabs(variable.impact[b]);
                     });
    const auto quota = static_cast<std::size_t>(
        codec.low_fraction * static_cast<double>(critical.size()));
    ckpt::LossyPlan plan;
    plan.low = CriticalMask(variable.total_elements());
    plan.precision = codec.precision;
    std::size_t demoted = 0;
    for (std::size_t rank = 0; rank < critical.size(); ++rank) {
      const std::size_t e = critical[rank];
      const bool under_threshold =
          codec.impact_threshold > 0.0 &&
          std::fabs(variable.impact[e]) < codec.impact_threshold;
      if (rank < quota || under_threshold) {
        plan.low.set(e);
        ++demoted;
      }
    }
    if (demoted > 0) map.emplace(variable.name, std::move(plan));
  }
  return map;
}

StorageComparison ScrutinySession::compare_storage(
    const std::filesystem::path& dir, const ckpt::CodecConfig& codec) const {
  // Legacy columns first, byte-identical to the two-column run.
  StorageComparison comparison = compare_storage(dir);

  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();
  const bool want_lossy = codec.lossy || impact_available();
  const ckpt::LossyMap lossy =
      want_lossy ? lossy_map(codec) : ckpt::LossyMap{};

  std::vector<ckpt::CodecConfig> combos;
  ckpt::CodecConfig prune_only = codec;
  prune_only.delta = false;
  prune_only.lossy = false;
  combos.push_back(prune_only);
  ckpt::CodecConfig with_delta = prune_only;
  with_delta.delta = true;
  combos.push_back(with_delta);
  if (!lossy.empty()) {
    ckpt::CodecConfig with_lossy = prune_only;
    with_lossy.lossy = true;
    combos.push_back(with_lossy);
    ckpt::CodecConfig combined = with_delta;
    combined.lossy = true;
    combos.push_back(combined);
  }

  for (const ckpt::CodecConfig& combo : combos) {
    const auto app = program_->make_primal();
    app->init();
    for (int s = 0; s < warmup; ++s) app->step();
    ckpt::CheckpointRegistry registry;
    app->register_checkpoint(registry);

    ckpt::DeltaCache cache;
    ckpt::CodecRequest request;
    if (combo.prune) request.masks = &masks;
    if (combo.lossy) request.lossy = &lossy;
    if (combo.delta) request.delta = &cache;

    const std::string stem =
        object_key(dir, program_->name() + "_" + combo.name());
    const ckpt::WriteReport base = ckpt::write_checkpoint(
        storage(), stem + "_base.ckpt", registry,
        static_cast<std::uint64_t>(warmup), request);
    app->step();
    request.delta_slot = combo.delta && cache.valid();
    const ckpt::WriteReport steady = ckpt::write_checkpoint(
        storage(), stem + "_steady.ckpt", registry,
        static_cast<std::uint64_t>(warmup) + 1, request);

    StorageComparison::CodecRow row;
    row.codec = combo.name();
    row.base_file = base.file_bytes;
    row.steady_file = steady.file_bytes;
    row.raw_payload = steady.raw_payload_bytes;
    row.steady_seconds = steady.seconds;
    row.codec_seconds = steady.codec_seconds;
    row.io_seconds = steady.io_seconds();
    comparison.codec_rows.push_back(std::move(row));
  }
  return comparison;
}

RestartVerification ScrutinySession::verify_restart(
    const std::filesystem::path& dir, const ckpt::CodecConfig& codec) const {
  const ckpt::PruneMap masks = analysis().to_prune_map();
  const int warmup = warmup_steps();
  const ProgramTraits& traits = program_->traits();
  const double tol = traits.verify_tolerance;
  const ckpt::LossyMap lossy =
      codec.lossy ? lossy_map(codec) : ckpt::LossyMap{};

  RestartVerification verification;
  verification.codec = codec.name();
  verification.golden = golden_outputs();

  ckpt::ManagerConfig manager_config;
  manager_config.basename =
      object_key(dir, program_->name() + "_" + codec.name());
  manager_config.interval = 1;
  manager_config.keep_slots = 4;
  manager_config.codec = codec;

  // Writer: warmup, then a three-slot chain (keyframe + two deltas when
  // the pipeline deltas), snapshotting the final state for the gate.
  std::map<std::string, std::vector<std::byte>> image;
  int total_steps = 0;
  std::string corrupt_variable = traits.verify_corrupt_variable;
  {
    ckpt::CheckpointManager manager(manager_config, storage_shared());
    const auto writer = program_->make_primal();
    writer->init();
    for (int s = 0; s < warmup; ++s) writer->step();
    total_steps = writer->total_steps();
    ckpt::CheckpointRegistry registry;
    writer->register_checkpoint(registry);
    if (corrupt_variable.empty() && !registry.variables().empty()) {
      corrupt_variable = registry.variables().front().name;
    }
    manager.set_prune_map(masks);
    if (!lossy.empty()) manager.set_lossy_map(lossy);
    for (int s = 0; s < 3; ++s) {
      (void)manager.checkpoint_now(
          static_cast<std::uint64_t>(warmup + s), registry);
      if (s < 2) writer->step();
    }
    for (const ckpt::VariableInfo& variable : registry.variables()) {
      const std::span<std::byte> bytes = variable.bytes();
      image.emplace(variable.name,
                    std::vector<std::byte>(bytes.begin(), bytes.end()));
    }
  }

  // Failure: a fresh process poisons everything and restarts the chain.
  const ckpt::FailureInjector injector;
  {
    const auto app = program_->make_primal();
    app->init();
    ckpt::CheckpointRegistry registry;
    app->register_checkpoint(registry);
    injector.poison_all(registry);
    ckpt::CheckpointManager manager(manager_config, storage_shared());
    const auto report = manager.restart(registry);
    SCRUTINY_REQUIRE(report.has_value(),
                     "verify_restart: no restorable checkpoint chain for " +
                         verification.codec);
    verification.restored_step = report->step;
    verification.restored_state_matches =
        restored_state_within(registry, image, masks, lossy);
    for (int s = static_cast<int>(report->step); s < total_steps; ++s) {
      app->step();
    }
    verification.restarted = app->outputs();
  }
  if (lossy.empty()) {
    verification.pruned_restart_matches =
        verification.restored_state_matches &&
        all_close(verification.golden, verification.restarted, tol);
  } else {
    // Lossy runs drift downstream by design; the gate is the restored
    // state itself, element by element against the per-variable tolerance.
    verification.pruned_restart_matches =
        verification.restored_state_matches;
  }

  // Negative control: restore again, corrupt critical elements, and
  // require the state gate to fail — the tolerances must not swallow
  // real corruption.
  {
    const auto app = program_->make_primal();
    app->init();
    ckpt::CheckpointRegistry registry;
    app->register_checkpoint(registry);
    injector.poison_all(registry);
    ckpt::CheckpointManager manager(manager_config, storage_shared());
    const auto report = manager.restart(registry);
    SCRUTINY_REQUIRE(report.has_value(),
                     "verify_restart: chain vanished before the negative "
                     "control");
    const std::size_t corrupted =
        injector.corrupt_critical(registry, masks, corrupt_variable, 16);
    verification.negative_control_detected =
        corrupted > 0 &&
        !restored_state_within(registry, image, masks, lossy);
  }
  return verification;
}

}  // namespace scrutiny::core
