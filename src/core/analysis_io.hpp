// The .scmask analysis artifact: a persisted AnalysisResult.
//
// The criticality analysis is the expensive leg of the pipeline (a full
// reverse-AD recording plus sweeps); everything downstream — checkpoint
// pruning, storage accounting, restart verification, visualization — only
// needs the masks.  An .scmask file lets `scrutiny analyze --save-masks`
// pay that cost once and every later subcommand reuse it.
//
// Layout (little-endian, written through support/binary_io with the CRC-64
// trailer convention the checkpoint container uses):
//
//   magic u64 | version u32
//   program (len-prefixed string)
//   config: mode u8 | sweep u8 | warmup i32 | window i32 | threshold f64
//           sample_stride u64 | tape_reserve u64
//           integers_critical_by_type u8 | capture_impact u8
//   result: num_outputs u64 | tape_stats u64[4]
//           record/sweep/harvest/total seconds f64 | sweep_passes u64
//   num_variables u32
//   per variable:
//     name (len-prefixed) | is_integer u8 | element_size u32
//     ndim u8 | dims u64[ndim] | num_elements u64
//     mask words u64[ceil(num_elements / 64)]
//     has_impact u8 | impact f64[num_elements] (when has_impact)
//   crc u64   (CRC-64 over everything before it; no trailing bytes)
//
// load_analysis rejects wrong magic, unsupported versions, truncation,
// trailing garbage and CRC mismatches with ScrutinyError — a corrupt
// artifact can never silently feed the checkpoint writer.
#pragma once

#include <cstdint>
#include <filesystem>

#include "core/analysis_types.hpp"

namespace scrutiny::core {

inline constexpr std::uint64_t kAnalysisArtifactMagic =
    0x314b53414d524353ull;  // "SCRMASK1" little-endian
inline constexpr std::uint32_t kAnalysisArtifactVersion = 1;

/// The artifact pairs the result with the config that produced it, so a
/// consumer can reconstruct placement decisions (warmup step, window).
struct AnalysisArtifact {
  AnalysisConfig config;
  AnalysisResult result;
};

/// Atomically writes `path` (write-tmp+rename, like every checkpoint).
void save_analysis(const std::filesystem::path& path,
                   const AnalysisConfig& config,
                   const AnalysisResult& result);

[[nodiscard]] AnalysisArtifact load_analysis(
    const std::filesystem::path& path);

}  // namespace scrutiny::core
