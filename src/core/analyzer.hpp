// The criticality analyzer — the paper's core contribution.
//
// Given a program, the analyzer decides, for every element of every
// checkpointed variable, whether that element can influence the program's
// outputs over the post-checkpoint window:
//
//   ReverseAD (paper): run the window once with ad::Real recording on the
//     tape; reverse sweeps harvest ∂out/∂element for ALL elements
//     simultaneously.  The sweep itself is pluggable (AnalysisConfig::sweep):
//     vector mode seeds a lane per output and covers every output in
//     ceil(num_outputs / 8) tape passes, bitset mode propagates dependency
//     bits for 64 outputs per pass, and scalar mode is the classic
//     one-pass-per-output ablation baseline.
//   ForwardAD: one dual-number rerun per element — the cost mirror-image of
//     reverse mode, kept as an ablation and cross-check.
//   ReadSet: track whether each checkpointed value is consumed before being
//     overwritten (the "algorithmic analysis" of the paper's Discussion).
//   FiniteDiff: two primal reruns per element, assumption-free baseline.
//
// Two entry shapes:
//
//  * Runtime: the analyze_* overloads below take a type-erased
//    core::ProgramInstance / ReadSetInstance (see core/program.hpp) — this
//    is what AnyProgram, the registry and the ScrutinySession pipeline
//    drive.  Only coarse calls (init/step/outputs/bindings) are virtual;
//    the per-element sweep loops run on concrete data.
//
//  * Templates: analyze_program<App> and the per-mode wrappers instantiate
//    the classic concept directly (see src/npb for eight implementations):
//
//   template <typename T> class App {
//    public:
//     using Config = ...;                      // scalar-type independent
//     static constexpr const char* kName;
//     explicit App(const Config&);
//     void init();                             // deterministic setup
//     void step();                             // one main-loop iteration
//     std::vector<T> outputs();                // verification values
//     std::vector<core::VarBind<T>> checkpoint_bindings();
//   };
//
// App must be copyable (ForwardAD/FiniteDiff replay from copies).
#pragma once

#include <string_view>

#include "ad/forward.hpp"
#include "ad/reverse.hpp"
#include "core/analysis_types.hpp"
#include "core/program.hpp"
#include "core/var_bind.hpp"
#include "support/error.hpp"

namespace scrutiny::core {

// ---------------------------------------------------------------------------
// Runtime analyzers over type-erased instances (defined in analyzer.cpp)
// ---------------------------------------------------------------------------

[[nodiscard]] AnalysisResult analyze_reverse_ad(
    ProgramInstance<ad::Real>& app, std::string_view program_name,
    const AnalysisConfig& cfg);

[[nodiscard]] AnalysisResult analyze_forward_ad(
    ProgramInstance<ad::Dual>& app, std::string_view program_name,
    const AnalysisConfig& cfg);

[[nodiscard]] AnalysisResult analyze_finite_diff(
    ProgramInstance<double>& app, std::string_view program_name,
    const AnalysisConfig& cfg);

[[nodiscard]] AnalysisResult analyze_read_set(ReadSetInstance& app,
                                              std::string_view program_name,
                                              const AnalysisConfig& cfg);

// ---------------------------------------------------------------------------
// Template front ends over the App<T> concept
// ---------------------------------------------------------------------------

template <template <typename> class App>
AnalysisResult analyze_reverse_ad(const typename App<ad::Real>::Config& acfg,
                                  const AnalysisConfig& cfg) {
  detail::ErasedApp<App, ad::Real> app(acfg);
  return analyze_reverse_ad(app, App<ad::Real>::kName, cfg);
}

template <template <typename> class App>
AnalysisResult analyze_forward_ad(const typename App<ad::Dual>::Config& acfg,
                                  const AnalysisConfig& cfg) {
  detail::ErasedApp<App, ad::Dual> app(acfg);
  return analyze_forward_ad(app, App<ad::Dual>::kName, cfg);
}

template <template <typename> class App>
AnalysisResult analyze_finite_diff(const typename App<double>::Config& acfg,
                                   const AnalysisConfig& cfg) {
  detail::ErasedApp<App, double> app(acfg);
  return analyze_finite_diff(app, App<double>::kName, cfg);
}

template <template <typename> class App, typename Inner = double>
AnalysisResult analyze_read_set(
    const typename App<ad::Marked<Inner>>::Config& acfg,
    const AnalysisConfig& cfg) {
  detail::ErasedReadSet<App, Inner> app(acfg);
  return analyze_read_set(app, App<ad::Marked<Inner>>::kName, cfg);
}

/// Runs the configured analysis mode on program `App`.
template <template <typename> class App>
AnalysisResult analyze_program(const typename App<double>::Config& acfg,
                               const AnalysisConfig& cfg) {
  switch (cfg.mode) {
    case AnalysisMode::ReverseAD:
      return analyze_reverse_ad<App>(acfg, cfg);
    case AnalysisMode::ForwardAD:
      return analyze_forward_ad<App>(acfg, cfg);
    case AnalysisMode::ReadSet:
      return analyze_read_set<App>(acfg, cfg);
    case AnalysisMode::FiniteDiff:
      return analyze_finite_diff<App>(acfg, cfg);
  }
  throw ScrutinyError("unknown analysis mode");
}

}  // namespace scrutiny::core
