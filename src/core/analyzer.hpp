// The criticality analyzer — the paper's core contribution.
//
// Given a program templated on its scalar type, the analyzer decides, for
// every element of every checkpointed variable, whether that element can
// influence the program's outputs over the post-checkpoint window:
//
//   ReverseAD (paper): run the window once with ad::Real recording on the
//     tape; reverse sweeps harvest ∂out/∂element for ALL elements
//     simultaneously.  The sweep itself is pluggable (AnalysisConfig::sweep):
//     vector mode seeds a lane per output and covers every output in
//     ceil(num_outputs / 8) tape passes, bitset mode propagates dependency
//     bits for 64 outputs per pass, and scalar mode is the classic
//     one-pass-per-output ablation baseline.
//   ForwardAD: one dual-number rerun per element — the cost mirror-image of
//     reverse mode, kept as an ablation and cross-check.
//   ReadSet: track whether each checkpointed value is consumed before being
//     overwritten (the "algorithmic analysis" of the paper's Discussion).
//   FiniteDiff: two primal reruns per element, assumption-free baseline.
//
// Program concept (see src/npb for eight implementations):
//
//   template <typename T> class App {
//    public:
//     using Config = ...;                      // scalar-type independent
//     static constexpr const char* kName;
//     explicit App(const Config&);
//     void init();                             // deterministic setup
//     void step();                             // one main-loop iteration
//     std::vector<T> outputs();                // verification values
//     std::vector<core::VarBind<T>> checkpoint_bindings();
//   };
//
// App must be copyable (ForwardAD/FiniteDiff replay from copies).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ad/adjoint_models.hpp"
#include "ad/forward.hpp"
#include "ad/num_traits.hpp"
#include "ad/readset.hpp"
#include "ad/reverse.hpp"
#include "ad/tape.hpp"
#include "core/analysis_types.hpp"
#include "core/var_bind.hpp"
#include "support/error.hpp"
#include "support/timer.hpp"

namespace scrutiny::core {

namespace detail {

/// Builds the result skeleton (names, shapes, default masks) from bindings.
template <typename T>
void init_result_variables(AnalysisResult& result,
                           const std::vector<VarBind<T>>& binds,
                           const AnalysisConfig& cfg, bool default_critical) {
  for (const VarBind<T>& bind : binds) {
    bind.validate();
    VariableCriticality variable;
    variable.name = bind.name;
    variable.shape = bind.shape;
    variable.element_size = bind.element_size;
    variable.is_integer = bind.is_integer;
    if (bind.is_integer) {
      variable.mask = CriticalMask(bind.num_elements,
                                   cfg.integers_critical_by_type);
    } else {
      variable.mask = CriticalMask(bind.num_elements, default_critical);
    }
    if (cfg.capture_impact && !bind.is_integer) {
      variable.impact.assign(bind.num_elements, 0.0);
    }
    result.variables.push_back(std::move(variable));
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// ReverseAD
// ---------------------------------------------------------------------------

template <template <typename> class App>
AnalysisResult analyze_reverse_ad(const typename App<ad::Real>::Config& acfg,
                                  const AnalysisConfig& cfg) {
  SCRUTINY_REQUIRE(
      cfg.sweep != ad::SweepKind::Bitset || cfg.threshold == 0.0,
      "bitset sweep answers the threshold-0 activity question only; "
      "use --sweep scalar|vector with a nonzero threshold");
  SCRUTINY_REQUIRE(
      cfg.sweep != ad::SweepKind::Bitset || !cfg.capture_impact,
      "bitset sweep propagates dependency bits, not magnitudes; "
      "impact capture needs --sweep scalar|vector");
  Timer total_timer;
  AnalysisResult result;
  result.program = App<ad::Real>::kName;
  result.mode = AnalysisMode::ReverseAD;
  result.sweep = cfg.sweep;

  App<ad::Real> app(acfg);
  app.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) app.step();

  ad::Tape tape;
  if (cfg.tape_reserve_statements > 0) {
    tape.reserve(cfg.tape_reserve_statements);
  }

  std::vector<VarBind<ad::Real>> binds;
  std::vector<std::vector<ad::Identifier>> input_ids;
  std::vector<ad::Real> outputs;

  Timer record_timer;
  {
    ad::ActiveTapeGuard guard(tape);
    binds = app.checkpoint_bindings();
    detail::init_result_variables(result, binds, cfg,
                                  /*default_critical=*/false);
    input_ids.resize(binds.size());
    for (std::size_t b = 0; b < binds.size(); ++b) {
      if (binds[b].is_integer) continue;
      input_ids[b].reserve(binds[b].values.size());
      for (ad::Real& value : binds[b].values) {
        value.register_input();
        input_ids[b].push_back(value.id());
      }
    }
    for (int s = 0; s < cfg.window_steps; ++s) app.step();
    outputs = app.outputs();
  }
  result.record_seconds = record_timer.seconds();
  result.num_outputs = outputs.size();
  result.tape_stats = tape.stats();

  // Build the seed set once: every active output, in output order.
  // Constant outputs have no dependencies and contribute no seed.
  std::vector<ad::Identifier> seeds;
  seeds.reserve(outputs.size());
  for (const ad::Real& output : outputs) {
    if (output.is_active()) seeds.push_back(output.id());
  }

  double sweep_seconds = 0.0;
  double harvest_seconds = 0.0;
  std::size_t sweep_passes = 0;

  // Folds one block of swept lanes into the masks; adjoint_at(id, lane)
  // yields |∂out[lane]/∂id| (1/0 for the bitset model).
  auto harvest_block = [&](std::size_t lanes, auto&& adjoint_at) {
    Timer harvest_timer;
    for (std::size_t b = 0; b < binds.size(); ++b) {
      if (binds[b].is_integer) continue;
      VariableCriticality& variable = result.variables[b];
      const std::uint32_t comps = binds[b].components_per_element;
      for (std::size_t c = 0; c < input_ids[b].size(); ++c) {
        const ad::Identifier id = input_ids[b][c];
        for (std::size_t w = 0; w < lanes; ++w) {
          const double adj = adjoint_at(id, w);
          if (adj > cfg.threshold) {
            variable.mask.set(c / comps, true);
          }
          if (cfg.capture_impact) {
            double& slot = variable.impact[c / comps];
            slot = std::max(slot, adj);
          }
        }
      }
    }
    harvest_seconds += harvest_timer.seconds();
  };

  // The one blocked sweep: seeds are chunked Model::kLanes at a time and
  // each chunk costs a single reverse pass.  The scalar model is simply
  // the kLanes == 1 instance of the same driver (the old per-output loop).
  auto run_blocked = [&](auto model, auto&& seed_lane, auto&& adjoint_at) {
    model.resize(tape.max_identifier());
    constexpr std::size_t kLanes = decltype(model)::kLanes;
    for (std::size_t base = 0; base < seeds.size(); base += kLanes) {
      const std::size_t lanes =
          std::min<std::size_t>(kLanes, seeds.size() - base);
      model.clear();
      for (std::size_t w = 0; w < lanes; ++w) {
        seed_lane(model, seeds[base + w], w);
      }
      Timer pass_timer;
      tape.evaluate_with(model);
      sweep_seconds += pass_timer.seconds();
      ++sweep_passes;
      harvest_block(lanes, [&](ad::Identifier id, std::size_t w) {
        return adjoint_at(model, id, w);
      });
    }
  };

  switch (cfg.sweep) {
    case ad::SweepKind::Scalar:
      run_blocked(
          ad::ScalarAdjoints{},
          [](ad::ScalarAdjoints& m, ad::Identifier id, std::size_t) {
            m.seed(id, 1.0);
          },
          [](const ad::ScalarAdjoints& m, ad::Identifier id, std::size_t) {
            return std::fabs(m.adjoint(id));
          });
      break;
    case ad::SweepKind::Vector:
      run_blocked(
          ad::VectorAdjoints{},
          [](ad::VectorAdjoints& m, ad::Identifier id, std::size_t w) {
            m.seed(id, w, 1.0);
          },
          [](const ad::VectorAdjoints& m, ad::Identifier id, std::size_t w) {
            return std::fabs(m.adjoint(id, w));
          });
      break;
    case ad::SweepKind::Bitset:
      run_blocked(
          ad::BitsetAdjoints{},
          [](ad::BitsetAdjoints& m, ad::Identifier id, std::size_t w) {
            m.seed(id, w);
          },
          [](const ad::BitsetAdjoints& m, ad::Identifier id, std::size_t w) {
            return m.test(id, w) ? 1.0 : 0.0;
          });
      break;
  }

  result.sweep_seconds = sweep_seconds;
  result.harvest_seconds = harvest_seconds;
  result.sweep_passes = sweep_passes;
  result.total_seconds = total_timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// ReadSet
// ---------------------------------------------------------------------------

template <template <typename> class App, typename Inner = double>
AnalysisResult analyze_read_set(
    const typename App<ad::Marked<Inner>>::Config& acfg,
    const AnalysisConfig& cfg) {
  using M = ad::Marked<Inner>;
  Timer total_timer;
  AnalysisResult result;
  result.program = App<M>::kName;
  result.mode = AnalysisMode::ReadSet;

  App<M> app(acfg);
  app.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) app.step();

  std::vector<VarBind<M>> binds = app.checkpoint_bindings();
  detail::init_result_variables(result, binds, cfg,
                                /*default_critical=*/false);

  std::uint64_t total_components = 0;
  for (const VarBind<M>& bind : binds) {
    if (!bind.is_integer) total_components += bind.values.size();
  }
  ad::ReadSetTracker tracker(static_cast<std::size_t>(total_components));

  Timer record_timer;
  {
    ad::ActiveTrackerGuard guard(tracker);
    std::int64_t offset = 0;
    for (VarBind<M>& bind : binds) {
      if (bind.is_integer) continue;
      for (M& value : bind.values) value.set_origin(offset++);
    }
    for (int s = 0; s < cfg.window_steps; ++s) app.step();
    std::vector<M> outputs = app.outputs();
    result.num_outputs = outputs.size();
  }
  result.record_seconds = record_timer.seconds();

  std::size_t offset = 0;
  for (std::size_t b = 0; b < binds.size(); ++b) {
    if (binds[b].is_integer) continue;
    VariableCriticality& variable = result.variables[b];
    const std::uint32_t comps = binds[b].components_per_element;
    for (std::size_t c = 0; c < binds[b].values.size(); ++c) {
      if (tracker.was_read(offset + c)) {
        variable.mask.set(c / comps, true);
      }
    }
    offset += binds[b].values.size();
  }
  result.total_seconds = total_timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// ForwardAD / FiniteDiff — per-element replay from a warmed-up base copy
// ---------------------------------------------------------------------------

namespace detail {

/// Per-component probe bookkeeping shared by the two replay modes.
struct ProbeSite {
  std::size_t bind_index;
  std::size_t component_index;
};

template <typename T>
std::vector<ProbeSite> collect_probe_sites(
    const std::vector<VarBind<T>>& binds, std::uint64_t stride) {
  std::vector<ProbeSite> sites;
  for (std::size_t b = 0; b < binds.size(); ++b) {
    if (binds[b].is_integer) continue;
    for (std::size_t c = 0; c < binds[b].values.size();
         c += static_cast<std::size_t>(stride)) {
      sites.push_back(ProbeSite{b, c});
    }
  }
  return sites;
}

}  // namespace detail

template <template <typename> class App>
AnalysisResult analyze_forward_ad(const typename App<ad::Dual>::Config& acfg,
                                  const AnalysisConfig& cfg) {
  Timer total_timer;
  AnalysisResult result;
  result.program = App<ad::Dual>::kName;
  result.mode = AnalysisMode::ForwardAD;

  App<ad::Dual> base(acfg);
  base.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) base.step();

  std::vector<VarBind<ad::Dual>> base_binds = base.checkpoint_bindings();
  // Unprobed elements (sampling) stay conservatively critical.
  detail::init_result_variables(result, base_binds, cfg,
                                /*default_critical=*/true);

  const std::uint64_t stride = std::max<std::uint64_t>(1, cfg.sample_stride);
  const std::vector<detail::ProbeSite> sites =
      detail::collect_probe_sites(base_binds, stride);
  std::vector<std::uint8_t> verdict(sites.size(), 0);  // 1 = critical

  Timer record_timer;
#if defined(SCRUTINY_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::size_t p = 0; p < sites.size(); ++p) {
    App<ad::Dual> run = base;
    std::vector<VarBind<ad::Dual>> binds = run.checkpoint_bindings();
    binds[sites[p].bind_index].values[sites[p].component_index]
        .set_derivative(1.0);
    for (int s = 0; s < cfg.window_steps; ++s) run.step();
    for (const ad::Dual& out : run.outputs()) {
      if (std::fabs(out.derivative()) > cfg.threshold) {
        verdict[p] = 1;
        break;
      }
    }
  }
  result.record_seconds = record_timer.seconds();

  // Fold component verdicts into element masks.  With sampling, an element
  // is uncritical only if every probed component of it was uncritical and
  // at least one component was probed.
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    result.variables[b].mask.set_all(false);
  }
  std::vector<std::vector<std::uint8_t>> any_probe(base_binds.size());
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (!base_binds[b].is_integer) {
      any_probe[b].assign(base_binds[b].num_elements, 0);
    }
  }
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const auto [b, c] = sites[p];
    const std::size_t element = c / base_binds[b].components_per_element;
    any_probe[b][element] = 1;
    if (verdict[p] != 0) {
      result.variables[b].mask.set(element, true);
    }
  }
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    for (std::size_t e = 0; e < base_binds[b].num_elements; ++e) {
      if (any_probe[b][e] == 0) {
        result.variables[b].mask.set(e, true);  // unsampled: conservative
      }
    }
  }

  result.num_outputs = base.outputs().size();
  result.total_seconds = total_timer.seconds();
  return result;
}

template <template <typename> class App>
AnalysisResult analyze_finite_diff(const typename App<double>::Config& acfg,
                                   const AnalysisConfig& cfg) {
  Timer total_timer;
  AnalysisResult result;
  result.program = App<double>::kName;
  result.mode = AnalysisMode::FiniteDiff;

  App<double> base(acfg);
  base.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) base.step();

  std::vector<VarBind<double>> base_binds = base.checkpoint_bindings();
  detail::init_result_variables(result, base_binds, cfg,
                                /*default_critical=*/true);

  const std::uint64_t stride = std::max<std::uint64_t>(1, cfg.sample_stride);
  const std::vector<detail::ProbeSite> sites =
      detail::collect_probe_sites(base_binds, stride);
  std::vector<std::uint8_t> verdict(sites.size(), 0);

  auto run_window = [&cfg](App<double> run,
                           std::size_t bind_index, std::size_t component,
                           double delta) {
    std::vector<VarBind<double>> binds = run.checkpoint_bindings();
    binds[bind_index].values[component] += delta;
    for (int s = 0; s < cfg.window_steps; ++s) run.step();
    return run.outputs();
  };

  Timer record_timer;
#if defined(SCRUTINY_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const auto [b, c] = sites[p];
    const double x = base_binds[b].values[c];
    const double h = std::max(1e-6, std::fabs(x) * 1e-7);
    const std::vector<double> plus = run_window(base, b, c, +h);
    const std::vector<double> minus = run_window(base, b, c, -h);
    for (std::size_t m = 0; m < plus.size(); ++m) {
      const double d = std::fabs(plus[m] - minus[m]) / (2.0 * h);
      if (d > cfg.threshold) {
        verdict[p] = 1;
        break;
      }
    }
  }
  result.record_seconds = record_timer.seconds();

  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    result.variables[b].mask.set_all(false);
  }
  std::vector<std::vector<std::uint8_t>> any_probe(base_binds.size());
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (!base_binds[b].is_integer) {
      any_probe[b].assign(base_binds[b].num_elements, 0);
    }
  }
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const auto [b, c] = sites[p];
    const std::size_t element = c / base_binds[b].components_per_element;
    any_probe[b][element] = 1;
    if (verdict[p] != 0) result.variables[b].mask.set(element, true);
  }
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    for (std::size_t e = 0; e < base_binds[b].num_elements; ++e) {
      if (any_probe[b][e] == 0) result.variables[b].mask.set(e, true);
    }
  }

  result.num_outputs = base.outputs().size();
  result.total_seconds = total_timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// Mode dispatch
// ---------------------------------------------------------------------------

/// Runs the configured analysis mode on program `App`.
template <template <typename> class App>
AnalysisResult analyze_program(const typename App<double>::Config& acfg,
                               const AnalysisConfig& cfg) {
  switch (cfg.mode) {
    case AnalysisMode::ReverseAD:
      return analyze_reverse_ad<App>(acfg, cfg);
    case AnalysisMode::ForwardAD:
      return analyze_forward_ad<App>(acfg, cfg);
    case AnalysisMode::ReadSet:
      return analyze_read_set<App>(acfg, cfg);
    case AnalysisMode::FiniteDiff:
      return analyze_finite_diff<App>(acfg, cfg);
  }
  throw ScrutinyError("unknown analysis mode");
}

}  // namespace scrutiny::core
