// Report generation: the analyzer's results in the shape of the paper's
// Table II (uncritical element counts) and Table III (checkpoint storage).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis_types.hpp"

namespace scrutiny::core {

/// One Table II row.
struct CriticalityRow {
  std::string variable;  ///< "BT(u)" style label
  std::uint64_t uncritical = 0;
  std::uint64_t total = 0;
  double uncritical_rate = 0.0;
};

[[nodiscard]] std::vector<CriticalityRow> criticality_rows(
    const AnalysisResult& result);

/// Renders Table II for one program (ASCII).
[[nodiscard]] std::string format_criticality_table(
    const AnalysisResult& result);

/// One Table III row: storage with and without uncritical elements.
struct StorageRow {
  std::string program;
  std::uint64_t original_bytes = 0;
  std::uint64_t optimized_bytes = 0;  ///< critical payload + region metadata
  double saved_fraction = 0.0;
};

/// Aggregates all variables of one analysis into the program's storage row.
[[nodiscard]] StorageRow summarize_storage(const AnalysisResult& result);

/// Renders a multi-program Table III.
[[nodiscard]] std::string format_storage_table(
    const std::vector<StorageRow>& rows);

/// Human-readable analysis summary (mode, sweep, tape size, timings).
[[nodiscard]] std::string format_analysis_summary(
    const AnalysisResult& result);

/// Per-variable impact-magnitude table (max/mean |∂out/∂elem| and the count
/// of critical elements with zero recorded impact).  Variables without
/// captured impact data (integers, or capture_impact off) are skipped.
[[nodiscard]] std::string format_impact_summary(const AnalysisResult& result);

}  // namespace scrutiny::core
