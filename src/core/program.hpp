// Type-erased program handles and the global program registry.
//
// The analyzer's native currency is a class template `App<Scalar>` (the
// concept documented in core/analyzer.hpp): the same kernel instantiated
// with double, ad::Real, ad::Dual or ad::Marked<Inner> depending on the
// analysis mode.  That concept cannot cross a library boundary — every
// consumer used to be a `switch` over a closed benchmark enum.
//
// AnyProgram erases the concept behind per-scalar virtual factories: one
// factory per scalar instantiation (Real for reverse AD, Dual for forward
// AD, double for finite differences, Marked<Inner> for the read-set
// analysis, plus a primal handle that owns checkpoint registration and
// double-converted outputs).  Programs whose scalar is integral (NPB IS)
// simply omit the derivative factories; AnyProgram::analyze falls back to
// the paper's critical-by-type policy for them.
//
// ProgramRegistry maps names to AnyProgram values.  The NPB suite
// registers its eight benchmarks (npb::register_suite), the demo layer
// registers the README example programs, and user code can register its
// own templates at runtime with make_program<App>() — the CLI, the
// ScrutinySession pipeline and the reporting stack all work unchanged on
// anything registered.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ad/forward.hpp"
#include "ad/num_traits.hpp"
#include "ad/readset.hpp"
#include "ad/reverse.hpp"
#include "ckpt/registry.hpp"
#include "core/analysis_types.hpp"
#include "core/var_bind.hpp"
#include "support/error.hpp"

namespace scrutiny::core {

// ---------------------------------------------------------------------------
// Scalar-independent binding description
// ---------------------------------------------------------------------------

/// Everything a VarBind<T> says about a variable except the storage view.
struct BindingInfo {
  std::string name;
  std::vector<std::uint64_t> shape;
  std::uint32_t element_size = 8;
  std::uint64_t num_elements = 0;
  std::uint32_t components_per_element = 1;
  bool is_integer = false;

  [[nodiscard]] std::uint64_t num_components() const noexcept {
    return num_elements * components_per_element;
  }
};

template <typename T>
[[nodiscard]] BindingInfo binding_info_of(const VarBind<T>& bind) {
  BindingInfo info;
  info.name = bind.name;
  info.shape = bind.shape;
  info.element_size = bind.element_size;
  info.num_elements = bind.num_elements;
  info.components_per_element = bind.components_per_element;
  info.is_integer = bind.is_integer;
  return info;
}

// ---------------------------------------------------------------------------
// Per-scalar erased instances
// ---------------------------------------------------------------------------

/// A running instance of a program in one scalar instantiation.  The
/// analyzer drives these through the same coarse-grained calls the App
/// concept defines; no per-element operation is virtual.
template <typename Scalar>
class ProgramInstance {
 public:
  virtual ~ProgramInstance() = default;
  virtual void init() = 0;
  virtual void step() = 0;
  virtual int total_steps() = 0;
  virtual std::vector<Scalar> outputs() = 0;
  /// Spans view the instance's live storage; valid until the next step().
  virtual std::vector<VarBind<Scalar>> checkpoint_bindings() = 0;
  /// Deep copy (ForwardAD/FiniteDiff replay probes from copies).
  [[nodiscard]] virtual std::unique_ptr<ProgramInstance<Scalar>> clone()
      const = 0;
};

/// The primal (production-scalar) instance: double-converted outputs plus
/// checkpoint-registry access.  This is what the write/restart/verify legs
/// of the pipeline run on, for float and integer programs alike.
class PrimalInstance {
 public:
  virtual ~PrimalInstance() = default;
  virtual void init() = 0;
  virtual void step() = 0;
  virtual int total_steps() = 0;
  virtual std::vector<double> outputs() = 0;
  virtual std::vector<BindingInfo> binding_info() = 0;
  virtual void register_checkpoint(ckpt::CheckpointRegistry& registry) = 0;
  [[nodiscard]] virtual std::unique_ptr<PrimalInstance> clone() const = 0;
};

/// A Marked<Inner>-instantiated instance with the inner scalar erased; the
/// read-set analyzer only needs origin marking, not the values themselves.
class ReadSetInstance {
 public:
  virtual ~ReadSetInstance() = default;
  virtual void init() = 0;
  virtual void step() = 0;
  virtual std::vector<BindingInfo> binding_info() = 0;
  /// Assigns sequential origins 0..N-1 across the components of every
  /// non-integer binding, in binding order; returns N.
  virtual std::uint64_t mark_origins() = 0;
  virtual std::size_t num_outputs() = 0;
};

// ---------------------------------------------------------------------------
// Program-level metadata
// ---------------------------------------------------------------------------

/// Registration-time defaults: how the program wants to be analyzed and
/// verified when the caller does not say otherwise.
struct ProgramTraits {
  /// Mode used when a pipeline step needs an analysis and none was
  /// configured (IS registers ReadSet: derivatives do not apply to it).
  AnalysisMode default_mode = AnalysisMode::ReverseAD;
  int default_warmup_steps = 2;
  int default_window_steps = 2;
  std::uint64_t tape_reserve_statements = 0;
  /// Default sampling stride for the per-element replay modes
  /// (ForwardAD/FiniteDiff); ignored by the single-recording modes.
  std::uint64_t replay_sample_stride = 211;
  /// Variable corrupted by the restart verification's negative control;
  /// empty = the program's first checkpointed variable.
  std::string verify_corrupt_variable;
  /// Output tolerance for restart verification (0 = exact match).
  double verify_tolerance = 1e-10;
};

// ---------------------------------------------------------------------------
// AnyProgram
// ---------------------------------------------------------------------------

class AnyProgram {
 public:
  using RealFactory =
      std::function<std::unique_ptr<ProgramInstance<ad::Real>>()>;
  using DualFactory =
      std::function<std::unique_ptr<ProgramInstance<ad::Dual>>()>;
  using DoubleFactory =
      std::function<std::unique_ptr<ProgramInstance<double>>()>;
  using PrimalFactory = std::function<std::unique_ptr<PrimalInstance>()>;
  using ReadSetFactory = std::function<std::unique_ptr<ReadSetInstance>()>;

  AnyProgram() = default;
  AnyProgram(std::string name, ProgramTraits traits, RealFactory real,
             DualFactory dual, DoubleFactory fd, PrimalFactory primal,
             ReadSetFactory readset)
      : name_(std::move(name)),
        traits_(traits),
        real_(std::move(real)),
        dual_(std::move(dual)),
        double_(std::move(fd)),
        primal_(std::move(primal)),
        readset_(std::move(readset)) {}

  [[nodiscard]] bool valid() const noexcept {
    return static_cast<bool>(primal_);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const ProgramTraits& traits() const noexcept {
    return traits_;
  }

  /// False for integer-scalar programs: derivative modes fall back to the
  /// paper's critical-by-type policy instead of instantiating AD scalars.
  [[nodiscard]] bool supports_derivatives() const noexcept {
    return static_cast<bool>(real_);
  }

  [[nodiscard]] std::unique_ptr<ProgramInstance<ad::Real>> make_real() const;
  [[nodiscard]] std::unique_ptr<ProgramInstance<ad::Dual>> make_dual() const;
  [[nodiscard]] std::unique_ptr<ProgramInstance<double>> make_double() const;
  [[nodiscard]] std::unique_ptr<PrimalInstance> make_primal() const;
  [[nodiscard]] std::unique_ptr<ReadSetInstance> make_readset() const;

  /// The program's default analysis placement for `mode` (traits-driven;
  /// replay modes additionally get the sampling stride).
  [[nodiscard]] AnalysisConfig default_config(AnalysisMode mode) const;
  [[nodiscard]] AnalysisConfig default_config() const {
    return default_config(traits_.default_mode);
  }

  /// Runs the configured analysis mode on this program.  Integer-only
  /// programs answer every derivative mode with the critical-by-type
  /// policy (paper §IV-B).
  [[nodiscard]] AnalysisResult analyze(const AnalysisConfig& cfg) const;

 private:
  [[nodiscard]] AnalysisResult analyze_critical_by_type(
      const AnalysisConfig& cfg) const;

  std::string name_;
  ProgramTraits traits_;
  RealFactory real_;
  DualFactory dual_;
  DoubleFactory double_;
  PrimalFactory primal_;
  ReadSetFactory readset_;
};

// ---------------------------------------------------------------------------
// ProgramRegistry
// ---------------------------------------------------------------------------

/// Name -> AnyProgram map.  Lookups are case-insensitive (`bt`, `Bt` and
/// `BT` address the same program); names are unique modulo case.
///
/// Entries have stable addresses: references returned by get()/find()
/// stay valid across later add() calls, so sessions can hold a program
/// handle while other code keeps registering (the documented contract).
class ProgramRegistry {
 public:
  /// The process-wide registry every public entry point consults.
  [[nodiscard]] static ProgramRegistry& global();

  /// Registers a program; throws ScrutinyError on duplicate names.
  void add(AnyProgram program);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] const AnyProgram* find(std::string_view name) const noexcept;

  /// find() or throw a ScrutinyError naming the registered inventory.
  [[nodiscard]] const AnyProgram& get(std::string_view name) const;

  /// Registered names, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// " A B C" — the registration-order name list, for error messages.
  [[nodiscard]] std::string inventory() const;

  [[nodiscard]] std::size_t size() const noexcept {
    return programs_.size();
  }

 private:
  std::vector<std::unique_ptr<AnyProgram>> programs_;
};

// ---------------------------------------------------------------------------
// Adapters: App<Scalar> template -> erased instances
// ---------------------------------------------------------------------------

namespace detail {

template <template <typename> class App, typename Scalar>
class ErasedApp final : public ProgramInstance<Scalar> {
 public:
  explicit ErasedApp(const typename App<Scalar>::Config& config)
      : app_(config) {}

  void init() override { app_.init(); }
  void step() override { app_.step(); }
  int total_steps() override {
    // Programs without total_steps() (analysis-only: the synthetic test
    // programs) can still be analyzed — the analyzers never ask — but a
    // pipeline leg that needs the run length must fail loudly, not run a
    // vacuous zero-step "verification".
    if constexpr (requires(App<Scalar> a) { a.total_steps(); }) {
      return app_.total_steps();
    } else {
      throw ScrutinyError(std::string(App<Scalar>::kName) +
                          " exposes no total_steps(); the golden/restart "
                          "pipeline needs the uninterrupted run length");
    }
  }
  std::vector<Scalar> outputs() override { return app_.outputs(); }
  std::vector<VarBind<Scalar>> checkpoint_bindings() override {
    return app_.checkpoint_bindings();
  }
  [[nodiscard]] std::unique_ptr<ProgramInstance<Scalar>> clone()
      const override {
    return std::make_unique<ErasedApp>(*this);
  }

 private:
  App<Scalar> app_;
};

template <template <typename> class App, typename Scalar>
class ErasedPrimal final : public PrimalInstance {
 public:
  explicit ErasedPrimal(const typename App<Scalar>::Config& config)
      : app_(config) {}

  void init() override { app_.init(); }
  void step() override { app_.step(); }
  int total_steps() override {
    if constexpr (requires(App<Scalar> a) { a.total_steps(); }) {
      return app_.total_steps();
    } else {
      throw ScrutinyError(std::string(App<Scalar>::kName) +
                          " exposes no total_steps(); the golden/restart "
                          "pipeline needs the uninterrupted run length");
    }
  }
  std::vector<double> outputs() override {
    std::vector<double> out;
    const std::vector<Scalar> raw = app_.outputs();
    out.reserve(raw.size());
    for (const Scalar& v : raw) out.push_back(ad::passive_value(v));
    return out;
  }
  std::vector<BindingInfo> binding_info() override {
    std::vector<BindingInfo> infos;
    for (const VarBind<Scalar>& bind : app_.checkpoint_bindings()) {
      infos.push_back(binding_info_of(bind));
    }
    return infos;
  }
  void register_checkpoint(ckpt::CheckpointRegistry& registry) override {
    if constexpr (requires(App<Scalar> a, ckpt::CheckpointRegistry& r) {
                    a.register_checkpoint(r);
                  }) {
      app_.register_checkpoint(registry);
    } else {
      throw ScrutinyError(std::string(App<Scalar>::kName) +
                          " exposes no checkpoint registration; the "
                          "write/restart pipeline needs "
                          "register_checkpoint()");
    }
  }
  [[nodiscard]] std::unique_ptr<PrimalInstance> clone() const override {
    return std::make_unique<ErasedPrimal>(*this);
  }

 private:
  App<Scalar> app_;
};

template <template <typename> class App, typename Inner>
class ErasedReadSet final : public ReadSetInstance {
 public:
  using M = ad::Marked<Inner>;

  explicit ErasedReadSet(const typename App<M>::Config& config)
      : app_(config) {}

  void init() override { app_.init(); }
  void step() override { app_.step(); }
  std::vector<BindingInfo> binding_info() override {
    std::vector<BindingInfo> infos;
    for (const VarBind<M>& bind : app_.checkpoint_bindings()) {
      infos.push_back(binding_info_of(bind));
    }
    return infos;
  }
  std::uint64_t mark_origins() override {
    std::int64_t offset = 0;
    std::vector<VarBind<M>> binds = app_.checkpoint_bindings();
    for (VarBind<M>& bind : binds) {
      if (bind.is_integer) continue;
      for (M& value : bind.values) value.set_origin(offset++);
    }
    return static_cast<std::uint64_t>(offset);
  }
  std::size_t num_outputs() override { return app_.outputs().size(); }

 private:
  App<M> app_;
};

}  // namespace detail

/// Builds the type-erased handle for a float-scalar program template (the
/// full App<T> concept: double, ad::Real, ad::Dual and ad::Marked<double>
/// instantiations all compile).
template <template <typename> class App>
[[nodiscard]] AnyProgram make_program(
    typename App<double>::Config config = {}, ProgramTraits traits = {},
    std::string name = App<double>::kName) {
  return AnyProgram(
      std::move(name), traits,
      [config] {
        return std::unique_ptr<ProgramInstance<ad::Real>>(
            std::make_unique<detail::ErasedApp<App, ad::Real>>(config));
      },
      [config] {
        return std::unique_ptr<ProgramInstance<ad::Dual>>(
            std::make_unique<detail::ErasedApp<App, ad::Dual>>(config));
      },
      [config] {
        return std::unique_ptr<ProgramInstance<double>>(
            std::make_unique<detail::ErasedApp<App, double>>(config));
      },
      [config] {
        return std::unique_ptr<PrimalInstance>(
            std::make_unique<detail::ErasedPrimal<App, double>>(config));
      },
      [config] {
        return std::unique_ptr<ReadSetInstance>(
            std::make_unique<detail::ErasedReadSet<App, double>>(config));
      });
}

/// Integer-scalar programs (NPB IS): no derivative instantiations exist,
/// so only the primal and read-set factories are populated — derivative
/// analysis modes resolve to the critical-by-type policy.
template <template <typename> class App, typename Inner>
[[nodiscard]] AnyProgram make_integer_program(
    typename App<Inner>::Config config = {}, ProgramTraits traits = {},
    std::string name = App<Inner>::kName) {
  return AnyProgram(
      std::move(name), traits, AnyProgram::RealFactory{},
      AnyProgram::DualFactory{}, AnyProgram::DoubleFactory{},
      [config] {
        return std::unique_ptr<PrimalInstance>(
            std::make_unique<detail::ErasedPrimal<App, Inner>>(config));
      },
      [config] {
        return std::unique_ptr<ReadSetInstance>(
            std::make_unique<detail::ErasedReadSet<App, Inner>>(config));
      });
}

}  // namespace scrutiny::core
