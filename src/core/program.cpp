#include "core/program.hpp"

#include <utility>

#include "core/analyzer.hpp"

namespace scrutiny::core {

namespace {

[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'a' && a[i] <= 'z'
                        ? static_cast<char>(a[i] - 32)
                        : a[i];
    const char cb = b[i] >= 'a' && b[i] <= 'z'
                        ? static_cast<char>(b[i] - 32)
                        : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// AnyProgram
// ---------------------------------------------------------------------------

std::unique_ptr<ProgramInstance<ad::Real>> AnyProgram::make_real() const {
  SCRUTINY_REQUIRE(static_cast<bool>(real_),
                   "program " + name_ + " has no reverse-AD instantiation");
  return real_();
}

std::unique_ptr<ProgramInstance<ad::Dual>> AnyProgram::make_dual() const {
  SCRUTINY_REQUIRE(static_cast<bool>(dual_),
                   "program " + name_ + " has no forward-AD instantiation");
  return dual_();
}

std::unique_ptr<ProgramInstance<double>> AnyProgram::make_double() const {
  SCRUTINY_REQUIRE(static_cast<bool>(double_),
                   "program " + name_ + " has no double instantiation");
  return double_();
}

std::unique_ptr<PrimalInstance> AnyProgram::make_primal() const {
  SCRUTINY_REQUIRE(valid(), "empty AnyProgram handle");
  return primal_();
}

std::unique_ptr<ReadSetInstance> AnyProgram::make_readset() const {
  SCRUTINY_REQUIRE(static_cast<bool>(readset_),
                   "program " + name_ + " has no read-set instantiation");
  return readset_();
}

AnalysisConfig AnyProgram::default_config(AnalysisMode mode) const {
  AnalysisConfig cfg;
  cfg.mode = mode;
  cfg.warmup_steps = traits_.default_warmup_steps;
  cfg.window_steps = traits_.default_window_steps;
  cfg.tape_reserve_statements = traits_.tape_reserve_statements;
  if (mode == AnalysisMode::ForwardAD || mode == AnalysisMode::FiniteDiff) {
    // One rerun (two for FD) per probed element: sample.
    cfg.sample_stride = traits_.replay_sample_stride;
  }
  return cfg;
}

AnalysisResult AnyProgram::analyze(const AnalysisConfig& cfg) const {
  SCRUTINY_REQUIRE(valid(), "empty AnyProgram handle");
  switch (cfg.mode) {
    case AnalysisMode::ReverseAD: {
      if (!supports_derivatives()) return analyze_critical_by_type(cfg);
      const auto app = real_();
      return analyze_reverse_ad(*app, name_, cfg);
    }
    case AnalysisMode::ForwardAD: {
      if (!supports_derivatives()) return analyze_critical_by_type(cfg);
      const auto app = dual_();
      return analyze_forward_ad(*app, name_, cfg);
    }
    case AnalysisMode::FiniteDiff: {
      if (!supports_derivatives()) return analyze_critical_by_type(cfg);
      const auto app = double_();
      return analyze_finite_diff(*app, name_, cfg);
    }
    case AnalysisMode::ReadSet: {
      const auto app = readset_();
      return analyze_read_set(*app, name_, cfg);
    }
  }
  throw ScrutinyError("unknown analysis mode");
}

/// Derivative analysis does not apply (integer program): every element is
/// critical by type, the paper's treatment of indexes and sort keys.
AnalysisResult AnyProgram::analyze_critical_by_type(
    const AnalysisConfig& cfg) const {
  const auto app = primal_();
  app->init();
  AnalysisResult result;
  result.program = name_;
  result.mode = cfg.mode;
  for (const BindingInfo& info : app->binding_info()) {
    VariableCriticality variable;
    variable.name = info.name;
    variable.shape = info.shape;
    variable.element_size = info.element_size;
    variable.is_integer = true;
    variable.mask = CriticalMask(info.num_elements, true);
    result.variables.push_back(std::move(variable));
  }
  result.num_outputs = app->outputs().size();
  return result;
}

// ---------------------------------------------------------------------------
// ProgramRegistry
// ---------------------------------------------------------------------------

ProgramRegistry& ProgramRegistry::global() {
  static ProgramRegistry registry;
  return registry;
}

void ProgramRegistry::add(AnyProgram program) {
  SCRUTINY_REQUIRE(program.valid(), "cannot register an empty program");
  SCRUTINY_REQUIRE(!program.name().empty(),
                   "cannot register a nameless program");
  SCRUTINY_REQUIRE(find(program.name()) == nullptr,
                   "program already registered: " + program.name());
  programs_.push_back(std::make_unique<AnyProgram>(std::move(program)));
}

bool ProgramRegistry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

const AnyProgram* ProgramRegistry::find(
    std::string_view name) const noexcept {
  for (const auto& program : programs_) {
    if (iequals(program->name(), name)) return program.get();
  }
  return nullptr;
}

const AnyProgram& ProgramRegistry::get(std::string_view name) const {
  const AnyProgram* program = find(name);
  if (program == nullptr) {
    std::string what = "unknown program: ";
    what.append(name);
    what += " (registered:" + inventory() + ')';
    throw ScrutinyError(what);
  }
  return *program;
}

std::vector<std::string> ProgramRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(programs_.size());
  for (const auto& program : programs_) out.push_back(program->name());
  return out;
}

std::string ProgramRegistry::inventory() const {
  std::string out;
  for (const auto& program : programs_) {
    out += ' ';
    out += program->name();
  }
  return out;
}

}  // namespace scrutiny::core
