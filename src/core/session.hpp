// ScrutinySession — the pipeline façade over a registered program.
//
// The paper's workflow is a pipeline: analyze a window with reverse AD,
// turn the per-element criticality masks into a pruned checkpoint plan,
// then write/restart/verify (§IV).  A session owns one program handle and
// threads one analysis through all of those legs:
//
//   ScrutinySession session(ProgramRegistry::global().get("BT"));
//   session.analyze(cfg);                   // or load_analysis("f.scmask")
//   CheckpointPlan plan = session.plan();   // masks + Table III estimate
//   session.compare_storage(dir);           // full vs pruned checkpoints
//   session.verify_restart(dir);            // §IV-C protocol
//   session.save_analysis("f.scmask");      // persist the expensive sweep
//
// The analysis is computed once and cached on the session; loading a saved
// .scmask artifact substitutes for the sweep entirely (analysis_was_loaded
// reports which path populated the cache).  Thread control rides in the
// config: analyze(cfg) with AnalysisConfig::threads > 1 (or 0 = all
// hardware threads) runs the reverse sweep on the parallel scheduler —
// the cached result, and every pipeline leg derived from it, is
// bit-identical to the serial sweep's.
//
// Checkpoint legs go through a pluggable ckpt::StorageBackend
// (use_storage); the default is the on-disk FileBackend, so path arguments
// behave as before.  With a MemoryBackend or an async-wrapped backend the
// same paths act as object keys.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/backend_spec.hpp"
#include "ckpt/checkpoint_io.hpp"
#include "core/analysis_types.hpp"
#include "core/program.hpp"

namespace scrutiny::core {

/// Checkpoint storage with and without uncritical elements (Table III).
///
/// The paper's "Storage saved" column is the element-payload reduction (the
/// auxiliary file is reported separately there) — payload_saving() matches
/// that metric.  file_saving() additionally charges the container framing
/// and the embedded region metadata: the honest end-to-end number.
struct StorageComparison {
  /// One steady-state measurement per codec pipeline: a base slot is
  /// written at the warmup step, the program advances one step, and the
  /// next slot goes through the pipeline (a delta slot when it deltas).
  /// `raw_payload` is the write-set bytes entering the codec, so
  /// compression() is the end-to-end pipeline ratio including framing.
  struct CodecRow {
    std::string codec;              ///< pipeline name ("prune+delta", ...)
    std::uint64_t base_file = 0;    ///< keyframe container bytes (warmup)
    std::uint64_t steady_file = 0;  ///< steady-state container bytes
    std::uint64_t raw_payload = 0;  ///< write-set bytes entering the codec
    double steady_seconds = 0.0;    ///< steady write wall time
    double codec_seconds = 0.0;     ///< CPU spent diffing/quantizing
    double io_seconds = 0.0;        ///< steady_seconds minus codec CPU

    [[nodiscard]] double compression() const noexcept {
      if (steady_file == 0) return 0.0;
      return static_cast<double>(raw_payload) /
             static_cast<double>(steady_file);
    }
    [[nodiscard]] double mb_per_second() const noexcept {
      if (io_seconds <= 0.0) return 0.0;
      return static_cast<double>(steady_file) / io_seconds / 1.0e6;
    }
  };

  std::string program;
  std::uint64_t payload_full = 0;    ///< registered bytes ("Original")
  std::uint64_t payload_pruned = 0;  ///< critical element bytes ("Optimized")
  std::uint64_t file_full = 0;       ///< full container size on disk
  std::uint64_t file_pruned = 0;     ///< pruned container size on disk
  std::uint64_t aux_bytes = 0;       ///< auxiliary region metadata
  std::uint64_t elements_skipped = 0;
  double seconds_full = 0.0;    ///< app-thread blocked time, full write
  double seconds_pruned = 0.0;  ///< app-thread blocked time, pruned write
  std::vector<CodecRow> codec_rows;  ///< empty for the legacy two-column run

  [[nodiscard]] double payload_saving() const noexcept {
    if (payload_full == 0) return 0.0;
    return 1.0 - static_cast<double>(payload_pruned) /
                     static_cast<double>(payload_full);
  }
  [[nodiscard]] double file_saving() const noexcept {
    if (file_full == 0) return 0.0;
    return 1.0 -
           static_cast<double>(file_pruned) / static_cast<double>(file_full);
  }
};

/// §IV-C verification: restart from a pruned checkpoint with every
/// uncritical element poisoned must reproduce the uninterrupted outputs;
/// corrupting critical elements instead must be detected.
struct RestartVerification {
  bool pruned_restart_matches = false;
  bool negative_control_detected = false;
  std::vector<double> golden;
  std::vector<double> restarted;
  std::vector<double> corrupted;

  // Codec-aware protocol (set by the verify_restart codec overload).
  std::string codec;                ///< pipeline verified ("" = legacy run)
  std::uint64_t restored_step = 0;  ///< step the restart chain reconstructed
  /// Per-variable gate right after restore: every write-set element must
  /// be bit-exact, except lossy-demoted elements, which must round-trip
  /// within their precision tolerance.
  bool restored_state_matches = false;
};

/// What a pruned checkpoint of this analysis will contain: the prune map
/// the writer consumes plus the Table III storage estimate, per variable
/// and in total — all derived from the masks, no checkpoint written yet.
struct CheckpointPlan {
  struct Variable {
    std::string name;
    std::uint64_t total_elements = 0;
    std::uint64_t critical_elements = 0;
    std::uint64_t full_bytes = 0;    ///< all elements at element_size
    std::uint64_t pruned_bytes = 0;  ///< critical elements only
    std::uint64_t region_bytes = 0;  ///< serialized [begin,end) run list
  };

  std::string program;
  ckpt::PruneMap prune_map;
  std::vector<Variable> variables;
  std::uint64_t full_payload_bytes = 0;
  std::uint64_t pruned_payload_bytes = 0;
  std::uint64_t region_metadata_bytes = 0;

  /// The paper's "Storage saved" metric (payload only).
  [[nodiscard]] double payload_saving() const noexcept {
    if (full_payload_bytes == 0) return 0.0;
    return 1.0 - static_cast<double>(pruned_payload_bytes) /
                     static_cast<double>(full_payload_bytes);
  }
};

class ScrutinySession {
 public:
  /// The program handle must outlive the session (registry entries do).
  explicit ScrutinySession(const AnyProgram& program);

  /// Convenience: look the program up in the global registry (throws a
  /// ScrutinyError naming the registered inventory when absent).
  [[nodiscard]] static ScrutinySession open(std::string_view program_name);

  [[nodiscard]] const AnyProgram& program() const noexcept {
    return *program_;
  }

  // ---- storage --------------------------------------------------------

  /// Seats every checkpoint leg (write_checkpoint / restart /
  /// compare_storage / verify_restart) on `backend`.  Default: the on-disk
  /// FileBackend, for which keys are plain filesystem paths.
  void use_storage(std::shared_ptr<ckpt::StorageBackend> backend);

  /// BackendSpec overload: builds the backend the spec names (file:DIR,
  /// memory:, remote:HOST:PORT, each optionally +async) and seats the
  /// session on it.
  void use_storage(const ckpt::BackendSpec& spec);

  /// The active backend (creates the file default on first use).
  [[nodiscard]] ckpt::StorageBackend& storage() const;

  /// Shared handle to the active backend, for seating a CheckpointManager
  /// (chain-aware restart, rotation) on the session's storage.
  [[nodiscard]] std::shared_ptr<ckpt::StorageBackend> storage_shared() const;

  // ---- analysis -------------------------------------------------------

  /// Runs the analysis now and caches it; returns the cached result.
  const AnalysisResult& analyze(const AnalysisConfig& cfg);

  /// analyze() with the program's default configuration.
  const AnalysisResult& analyze();

  /// Adopts an analysis computed elsewhere (placement defaults derived
  /// from the program's traits for the result's mode).
  const AnalysisResult& use_analysis(AnalysisResult result);

  /// Loads a persisted .scmask artifact instead of re-running the sweep.
  /// Rejects artifacts produced for a different program.
  const AnalysisResult& load_analysis(const std::filesystem::path& path);

  /// Persists the cached analysis to a .scmask artifact.
  void save_analysis(const std::filesystem::path& path) const;

  [[nodiscard]] bool has_analysis() const noexcept {
    return analysis_.has_value();
  }
  /// True when the cached analysis came from load_analysis, i.e. the
  /// expensive sweep was skipped this session.
  [[nodiscard]] bool analysis_was_loaded() const noexcept {
    return analysis_loaded_;
  }
  [[nodiscard]] const AnalysisResult& analysis() const;
  [[nodiscard]] const AnalysisConfig& analysis_config() const;

  // ---- pipeline -------------------------------------------------------

  /// Derives the pruned-checkpoint plan from the cached analysis.
  [[nodiscard]] CheckpointPlan plan() const;

  /// Runs the program to the analysis warmup step and writes a pruned
  /// checkpoint there (plus the paper-style regions sidecar).
  ckpt::WriteReport write_checkpoint(
      const std::filesystem::path& file) const;

  /// Fresh instance, poisoned memory, restore `file`, run to completion;
  /// returns the final outputs.
  [[nodiscard]] std::vector<double> restart(
      const std::filesystem::path& file) const;

  /// Full uninterrupted run; outputs converted to double.
  [[nodiscard]] std::vector<double> golden_outputs() const;

  /// Writes full + pruned checkpoints at the warmup step (Table III).
  [[nodiscard]] StorageComparison compare_storage(
      const std::filesystem::path& dir) const;

  /// compare_storage plus steady-state codec rows: the legacy columns are
  /// measured exactly as before, then each pipeline (prune, prune∘delta,
  /// and — when impact data is available — the lossy combinations) writes
  /// a base slot at warmup and a steady slot one step later.  `codec`
  /// carries the knobs (precision, low_fraction, keyframe_interval); its
  /// delta/lossy switches do not limit which rows are measured, but
  /// `codec.lossy` with no captured impact throws.
  [[nodiscard]] StorageComparison compare_storage(
      const std::filesystem::path& dir,
      const ckpt::CodecConfig& codec) const;

  /// The §IV-C restart verification protocol.
  [[nodiscard]] RestartVerification verify_restart(
      const std::filesystem::path& dir) const;

  /// Codec-aware §IV-C protocol: a CheckpointManager writes a three-slot
  /// chain (keyframe + deltas when the pipeline deltas) at warmup..+2,
  /// memory is poisoned, and restart() reconstructs the newest state.
  /// Lossless pipelines must restore bit-exactly and reproduce the golden
  /// outputs; lossy pipelines are gated per variable instead — demoted
  /// elements within their precision tolerance, everything else bit-exact.
  /// The negative control corrupts critical elements after the restore and
  /// requires the state gate to fail.
  [[nodiscard]] RestartVerification verify_restart(
      const std::filesystem::path& dir,
      const ckpt::CodecConfig& codec) const;

  /// True when the cached analysis captured per-element impact magnitudes
  /// for at least one Float64 variable (what lossy plans rank by).
  [[nodiscard]] bool impact_available() const;

  /// Derives per-variable lossy plans from the cached analysis: within
  /// each Float64 variable's critical set, the `codec.low_fraction`
  /// lowest-|impact| elements (plus everything under
  /// `codec.impact_threshold`) are demoted to `codec.precision`.  Throws
  /// with guidance when the analysis captured no impact data.
  [[nodiscard]] ckpt::LossyMap lossy_map(
      const ckpt::CodecConfig& codec) const;

 private:
  [[nodiscard]] int warmup_steps() const;

  /// Object key for `filename` under `dir`, shaped for the active backend:
  /// path-joined for hierarchical keyspaces, '/'-folded to '.' for flat
  /// ones (the remote daemon's store rejects '/' in keys).
  [[nodiscard]] std::string object_key(const std::filesystem::path& dir,
                                       const std::string& filename) const;

  const AnyProgram* program_;
  std::optional<AnalysisConfig> config_;
  std::optional<AnalysisResult> analysis_;
  bool analysis_loaded_ = false;
  mutable std::shared_ptr<ckpt::StorageBackend> storage_;
};

}  // namespace scrutiny::core
