// Impact-magnitude ranking — the paper's future-work direction (§VII):
// "accelerate applications by using lower precision for uncritical or even
// those elements that are of very low impact".
//
// When AnalysisConfig::capture_impact is set, ReverseAD accumulates the
// largest |∂out/∂element| seen across outputs.  partition_by_impact splits
// the *critical* elements into a high-impact set (kept at full precision)
// and a low-impact set (eligible for float32 storage); see
// ckpt/lowprec.hpp for the mixed-precision writer that consumes it.
#pragma once

#include <cstddef>

#include "core/analysis_types.hpp"
#include "mask/critical_mask.hpp"

namespace scrutiny::core {

struct ImpactPartition {
  /// Set bit = low-impact critical element (candidate for reduced
  /// precision).  Uncritical elements are never set (they are dropped
  /// entirely, not demoted).
  CriticalMask low_impact;
  double impact_threshold = 0.0;  ///< |∂out/∂elem| at the split point
  std::size_t num_low = 0;
  std::size_t num_high = 0;
};

/// Splits the critical elements of `variable` at the given quantile of the
/// impact distribution: the lowest `low_fraction` of critical elements (by
/// impact magnitude) become low-impact.  Requires captured impact data.
[[nodiscard]] ImpactPartition partition_by_impact(
    const VariableCriticality& variable, double low_fraction);

}  // namespace scrutiny::core
