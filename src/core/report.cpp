#include "core/report.hpp"

#include "mask/region.hpp"
#include "support/format_util.hpp"
#include "support/table_printer.hpp"

namespace scrutiny::core {

std::vector<CriticalityRow> criticality_rows(const AnalysisResult& result) {
  std::vector<CriticalityRow> rows;
  for (const VariableCriticality& variable : result.variables) {
    CriticalityRow row;
    row.variable = result.program + "(" + variable.name + ")";
    row.uncritical = variable.uncritical_elements();
    row.total = variable.total_elements();
    row.uncritical_rate = variable.uncritical_rate();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_criticality_table(const AnalysisResult& result) {
  TablePrinter table({"Benchmark(variable)", "Uncritical", "Total",
                      "Uncritical rate"});
  for (const CriticalityRow& row : criticality_rows(result)) {
    table.add_row({row.variable, with_commas(row.uncritical),
                   with_commas(row.total), percent(row.uncritical_rate)});
  }
  return table.to_string();
}

StorageRow summarize_storage(const AnalysisResult& result) {
  StorageRow row;
  row.program = result.program;
  for (const VariableCriticality& variable : result.variables) {
    const std::uint64_t esize = variable.element_size;
    row.original_bytes += variable.total_elements() * esize;
    const RegionList regions = RegionList::from_mask(variable.mask);
    row.optimized_bytes += regions.covered_elements() * esize;
    row.optimized_bytes += regions.serialized_bytes();
  }
  if (row.original_bytes > 0) {
    row.saved_fraction = 1.0 - static_cast<double>(row.optimized_bytes) /
                                   static_cast<double>(row.original_bytes);
  }
  return row;
}

std::string format_storage_table(const std::vector<StorageRow>& rows) {
  TablePrinter table({"Benchmark", "Original", "Optimized", "Storage saved"});
  for (const StorageRow& row : rows) {
    table.add_row({row.program, human_bytes(row.original_bytes),
                   human_bytes(row.optimized_bytes),
                   percent(row.saved_fraction)});
  }
  return table.to_string();
}

std::string format_analysis_summary(const AnalysisResult& result) {
  std::string text;
  text += "program: " + result.program + "\n";
  text += "mode: ";
  text += analysis_mode_name(result.mode);
  text += "\n";
  text += "outputs: " + std::to_string(result.num_outputs) + "\n";
  if (result.mode == AnalysisMode::ReverseAD) {
    // Reserved = allocated capacity, resident = live in-RAM bytes; they
    // diverge after a generous reserve() or once segments spill.
    text += "tape statements: " +
            with_commas(result.tape_stats.num_statements) + " (reserved " +
            human_bytes(result.tape_stats.memory_bytes) +
            ", resident " + human_bytes(result.tape_stats.resident_bytes) +
            ")\n";
    text += "tape inputs: " + with_commas(result.tape_stats.num_inputs) + "\n";
    if (result.tape_memory_limit > 0) {
      text += "tape memory limit: " + human_bytes(result.tape_memory_limit) +
              " (" + with_commas(result.tape_stats.num_segments) +
              " segments, resident peak " +
              human_bytes(result.tape_stats.resident_peak_bytes) + ")\n";
      text += "tape spill: " +
              with_commas(result.tape_stats.segments_spilled) +
              " segments out (" +
              human_bytes(result.tape_stats.spilled_bytes) + "), " +
              with_commas(result.tape_stats.segments_reloaded) +
              " reloads\n";
    }
    text += "sweep: ";
    text += ad::sweep_kind_name(result.sweep);
    text += " (" + std::to_string(result.sweep_passes) + " tape pass" +
            (result.sweep_passes == 1 ? "" : "es") + ")\n";
    text += "sweep threads: " + std::to_string(result.threads);
    if (result.threads > 1) {
      text += " (parallel efficiency " +
              percent(result.parallel_efficiency) + ")";
    }
    text += "\n";
    if (!result.kernel_name.empty()) {
      text += "kernel: " + result.kernel_name + "\n";
    }
  }
  text += "record time: " + fixed(result.record_seconds * 1e3, 2) + " ms\n";
  text += "sweep time: " + fixed(result.sweep_seconds * 1e3, 2) + " ms\n";
  if (result.mode == AnalysisMode::ReverseAD) {
    text += "harvest time: " + fixed(result.harvest_seconds * 1e3, 2) +
            " ms\n";
  }
  text += "total time: " + fixed(result.total_seconds * 1e3, 2) + " ms\n";
  return text;
}

std::string format_impact_summary(const AnalysisResult& result) {
  TablePrinter table({"Benchmark(variable)", "Max impact", "Mean impact",
                      "Zero-impact critical"});
  for (const VariableCriticality& variable : result.variables) {
    if (variable.impact.empty()) continue;
    double max_impact = 0.0;
    double sum = 0.0;
    std::uint64_t zero_critical = 0;
    for (std::size_t e = 0; e < variable.impact.size(); ++e) {
      max_impact = std::max(max_impact, variable.impact[e]);
      sum += variable.impact[e];
      if (variable.impact[e] == 0.0 && variable.mask.test(e)) {
        ++zero_critical;
      }
    }
    const double mean =
        sum / static_cast<double>(variable.impact.size());
    table.add_row({result.program + "(" + variable.name + ")",
                   scientific(max_impact, 3), scientific(mean, 3),
                   with_commas(zero_critical)});
  }
  return table.to_string();
}

}  // namespace scrutiny::core
