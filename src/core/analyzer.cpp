// Runtime analyzer bodies: the four analysis modes over type-erased
// program instances.  The template front ends in analyzer.hpp are thin
// adapters onto these.
#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "ad/adjoint_models.hpp"
#include "ad/num_traits.hpp"
#include "ad/parallel_sweep.hpp"
#include "ad/readset.hpp"
#include "ad/tape.hpp"
#include "ad/tape_storage.hpp"
#include "ckpt/memory_backend.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace scrutiny::core {

namespace {

/// Builds the result skeleton (names, shapes, default masks).
void init_result_variables(AnalysisResult& result,
                           const std::vector<BindingInfo>& infos,
                           const AnalysisConfig& cfg, bool default_critical) {
  for (const BindingInfo& info : infos) {
    VariableCriticality variable;
    variable.name = info.name;
    variable.shape = info.shape;
    variable.element_size = info.element_size;
    variable.is_integer = info.is_integer;
    if (info.is_integer) {
      variable.mask = CriticalMask(info.num_elements,
                                   cfg.integers_critical_by_type);
    } else {
      variable.mask = CriticalMask(info.num_elements, default_critical);
    }
    if (cfg.capture_impact && !info.is_integer) {
      variable.impact.assign(info.num_elements, 0.0);
    }
    result.variables.push_back(std::move(variable));
  }
}

/// Typed-binding flavor: validate, strip the storage view, delegate.
template <typename T>
void init_result_variables(AnalysisResult& result,
                           const std::vector<VarBind<T>>& binds,
                           const AnalysisConfig& cfg, bool default_critical) {
  std::vector<BindingInfo> infos;
  infos.reserve(binds.size());
  for (const VarBind<T>& bind : binds) {
    bind.validate();
    infos.push_back(binding_info_of(bind));
  }
  init_result_variables(result, infos, cfg, default_critical);
}

/// Per-component probe bookkeeping shared by the two replay modes.
struct ProbeSite {
  std::size_t bind_index;
  std::size_t component_index;
};

template <typename T>
std::vector<ProbeSite> collect_probe_sites(
    const std::vector<VarBind<T>>& binds, std::uint64_t stride) {
  std::vector<ProbeSite> sites;
  for (std::size_t b = 0; b < binds.size(); ++b) {
    if (binds[b].is_integer) continue;
    for (std::size_t c = 0; c < binds[b].values.size();
         c += static_cast<std::size_t>(stride)) {
      sites.push_back(ProbeSite{b, c});
    }
  }
  return sites;
}

/// Tape construction from the config: unlimited = the default resident
/// tape (storage never allocated); a byte budget = segmented recording
/// with a spilling storage on the configured backend.
ad::Tape make_analysis_tape(const AnalysisConfig& cfg) {
  ad::TapeOptions options;
  options.kernels = &ad::kernel_table_for(cfg.kernel);
  if (cfg.tape_memory_limit > 0) {
    options.segment_capacity =
        ad::segment_capacity_for_limit(cfg.tape_memory_limit);
    if (cfg.tape_spill_backend == ckpt::BackendKind::Memory) {
      ad::SpillingTapeStorage::Options spill;
      spill.backend = std::make_shared<ckpt::MemoryBackend>();
      spill.memory_limit_bytes = cfg.tape_memory_limit;
      options.storage =
          std::make_unique<ad::SpillingTapeStorage>(std::move(spill));
    } else {
      options.storage = ad::SpillingTapeStorage::with_temp_file_backend(
          cfg.tape_memory_limit);
    }
  }
  return ad::Tape(std::move(options));
}

/// Folds per-probe verdicts into element masks.  With sampling, an element
/// is uncritical only if every probed component of it was uncritical and
/// at least one component was probed.
template <typename T>
void fold_probe_verdicts(AnalysisResult& result,
                         const std::vector<VarBind<T>>& base_binds,
                         const std::vector<ProbeSite>& sites,
                         const std::vector<std::uint8_t>& verdict) {
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    result.variables[b].mask.set_all(false);
  }
  std::vector<std::vector<std::uint8_t>> any_probe(base_binds.size());
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (!base_binds[b].is_integer) {
      any_probe[b].assign(base_binds[b].num_elements, 0);
    }
  }
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const auto [b, c] = sites[p];
    const std::size_t element = c / base_binds[b].components_per_element;
    any_probe[b][element] = 1;
    if (verdict[p] != 0) {
      result.variables[b].mask.set(element, true);
    }
  }
  for (std::size_t b = 0; b < base_binds.size(); ++b) {
    if (base_binds[b].is_integer) continue;
    for (std::size_t e = 0; e < base_binds[b].num_elements; ++e) {
      if (any_probe[b][e] == 0) {
        result.variables[b].mask.set(e, true);  // unsampled: conservative
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ReverseAD
// ---------------------------------------------------------------------------

AnalysisResult analyze_reverse_ad(ProgramInstance<ad::Real>& app,
                                  std::string_view program_name,
                                  const AnalysisConfig& cfg) {
  SCRUTINY_REQUIRE(
      cfg.sweep != ad::SweepKind::Bitset || cfg.threshold == 0.0,
      "bitset sweep answers the threshold-0 activity question only; "
      "use --sweep scalar|vector with a nonzero threshold");
  SCRUTINY_REQUIRE(
      cfg.sweep != ad::SweepKind::Bitset || !cfg.capture_impact,
      "bitset sweep propagates dependency bits, not magnitudes; "
      "impact capture needs --sweep scalar|vector");
  Timer total_timer;
  AnalysisResult result;
  result.program = program_name;
  result.mode = AnalysisMode::ReverseAD;
  result.sweep = cfg.sweep;

  app.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) app.step();

  ad::Tape tape = make_analysis_tape(cfg);
  result.tape_memory_limit = cfg.tape_memory_limit;
  result.kernel_name = tape.kernel_name();
  if (cfg.tape_reserve_statements > 0) {
    tape.reserve(cfg.tape_reserve_statements);
  }

  std::vector<VarBind<ad::Real>> binds;
  std::vector<std::vector<ad::Identifier>> input_ids;
  std::vector<ad::Real> outputs;

  Timer record_timer;
  {
    ad::ActiveTapeGuard guard(tape);
    binds = app.checkpoint_bindings();
    init_result_variables(result, binds, cfg, /*default_critical=*/false);
    input_ids.resize(binds.size());
    for (std::size_t b = 0; b < binds.size(); ++b) {
      if (binds[b].is_integer) continue;
      input_ids[b].reserve(binds[b].values.size());
      for (ad::Real& value : binds[b].values) {
        value.register_input();
        input_ids[b].push_back(value.id());
      }
    }
    for (int s = 0; s < cfg.window_steps; ++s) app.step();
    outputs = app.outputs();
  }
  result.record_seconds = record_timer.seconds();
  result.num_outputs = outputs.size();
  result.tape_stats = tape.stats();

  // Build the seed set once: every active output, in output order.
  // Constant outputs have no dependencies and contribute no seed.
  std::vector<ad::Identifier> seeds;
  seeds.reserve(outputs.size());
  for (const ad::Real& output : outputs) {
    if (output.is_active()) seeds.push_back(output.id());
  }

  double sweep_seconds = 0.0;
  double harvest_seconds = 0.0;
  std::size_t sweep_passes = 0;

  // Folds one block of swept lanes into per-binding masks/impact (the
  // caller picks WHOSE masks — the result's for the serial path, a
  // worker-private accumulator for the parallel one); adjoint_at(id, lane)
  // yields |∂out[lane]/∂id| (1/0 for the bitset model).
  auto fold_block = [&](std::vector<VariableCriticality>& variables,
                        std::size_t lanes, auto&& adjoint_at) {
    for (std::size_t b = 0; b < binds.size(); ++b) {
      if (binds[b].is_integer) continue;
      VariableCriticality& variable = variables[b];
      const std::uint32_t comps = binds[b].components_per_element;
      for (std::size_t c = 0; c < input_ids[b].size(); ++c) {
        const ad::Identifier id = input_ids[b][c];
        for (std::size_t w = 0; w < lanes; ++w) {
          const double adj = adjoint_at(id, w);
          if (adj > cfg.threshold) {
            variable.mask.set(c / comps, true);
          }
          if (cfg.capture_impact) {
            double& slot = variable.impact[c / comps];
            slot = std::max(slot, adj);
          }
        }
      }
    }
  };

  // The serial blocked sweep: seeds are chunked Model::kLanes at a time
  // and each chunk costs a single reverse pass.  The scalar model is
  // simply the kLanes == 1 instance of the same driver (the old
  // per-output loop).
  auto run_blocked = [&](auto model, auto&& seed_lane, auto&& adjoint_at) {
    constexpr std::size_t kLanes = decltype(model)::kLanes;
    // A single-block vector sweep (≤ kLanes outputs — where ParallelSweep
    // would degenerate to one worker anyway) narrows the per-identifier
    // lane blocks to the seeded count, cutting adjoint cache traffic;
    // per-lane arithmetic is unchanged, so masks stay bit-identical.
    model.configure_lanes(std::min<std::size_t>(
        kLanes, std::max<std::size_t>(std::size_t{1}, seeds.size())));
    model.resize(tape.max_identifier());
    for (std::size_t base = 0; base < seeds.size(); base += kLanes) {
      const std::size_t lanes =
          std::min<std::size_t>(kLanes, seeds.size() - base);
      model.clear();
      for (std::size_t w = 0; w < lanes; ++w) {
        seed_lane(model, seeds[base + w], w);
      }
      Timer pass_timer;
      tape.evaluate_with(model);
      sweep_seconds += pass_timer.seconds();
      ++sweep_passes;
      Timer harvest_timer;
      fold_block(result.variables, lanes,
                 [&](ad::Identifier id, std::size_t w) {
                   return adjoint_at(model, id, w);
                 });
      harvest_seconds += harvest_timer.seconds();
    }
  };

  // The parallel sweep: identical blocks, a fixed contiguous
  // block→worker split, worker-private accumulators, and an
  // order-independent OR/max merge — masks and impact come out
  // bit-identical to run_blocked for every thread count (see
  // ad/parallel_sweep.hpp for the argument).
  auto run_parallel = [&]<typename Model>(std::type_identity<Model>,
                                          std::size_t workers,
                                          auto&& seed_lane,
                                          auto&& adjoint_at) {
    const ad::ParallelSweep<Model> sweep(
        tape, std::span<const ad::Identifier>(seeds));
    workers = sweep.usable_workers(workers);

    // Worker-private accumulators mirroring the result skeleton (empty
    // masks; impact only when captured; integer bindings stay with the
    // by-type policy the skeleton already applied and are never touched).
    std::vector<std::vector<VariableCriticality>> accumulators(workers);
    for (auto& accumulator : accumulators) {
      accumulator.resize(binds.size());
      for (std::size_t b = 0; b < binds.size(); ++b) {
        if (binds[b].is_integer) continue;
        accumulator[b].mask = CriticalMask(binds[b].num_elements, false);
        if (cfg.capture_impact) {
          accumulator[b].impact.assign(binds[b].num_elements, 0.0);
        }
      }
    }

    support::ThreadPool pool(workers);
    const ad::ParallelSweepMetrics metrics = sweep.run(
        pool, workers, seed_lane,
        [&](std::size_t worker, const Model& model, std::size_t,
            std::size_t lanes) {
          fold_block(accumulators[worker], lanes,
                     [&](ad::Identifier id, std::size_t w) {
                       return adjoint_at(model, id, w);
                     });
        });

    // Deterministic merge: OR for criticality, max for impact — both
    // order-independent, so the block→worker split cannot show through.
    Timer merge_timer;
    for (const std::vector<VariableCriticality>& accumulator :
         accumulators) {
      for (std::size_t b = 0; b < binds.size(); ++b) {
        if (binds[b].is_integer) continue;
        result.variables[b].mask.merge_or(accumulator[b].mask);
        if (cfg.capture_impact) {
          for (std::size_t e = 0; e < binds[b].num_elements; ++e) {
            result.variables[b].impact[e] = std::max(
                result.variables[b].impact[e], accumulator[b].impact[e]);
          }
        }
      }
    }
    sweep_seconds = metrics.wall_seconds;
    harvest_seconds = merge_timer.seconds();
    sweep_passes = metrics.passes;
    result.threads = metrics.workers;
    result.parallel_efficiency = metrics.efficiency();
  };

  // One block is the smallest schedulable unit, so a sweep with B blocks
  // can use at most B workers; everything below 2 usable workers takes
  // the serial path (which the 1-thread contract pins to the pre-parallel
  // sweep, timing fields included).
  const std::size_t requested_threads = ad::resolve_sweep_threads(
      static_cast<std::size_t>(cfg.threads));
  auto dispatch = [&]<typename Model>(std::type_identity<Model> tag,
                                      auto&& seed_lane, auto&& adjoint_at) {
    const ad::ParallelSweep<Model> sweep(
        tape, std::span<const ad::Identifier>(seeds));
    if (sweep.usable_workers(requested_threads) >= 2) {
      run_parallel(tag, requested_threads, seed_lane, adjoint_at);
    } else {
      run_blocked(Model{}, seed_lane, adjoint_at);
    }
  };

  switch (cfg.sweep) {
    case ad::SweepKind::Scalar:
      dispatch(
          std::type_identity<ad::ScalarAdjoints>{},
          [](ad::ScalarAdjoints& m, ad::Identifier id, std::size_t) {
            m.seed(id, 1.0);
          },
          [](const ad::ScalarAdjoints& m, ad::Identifier id, std::size_t) {
            return std::fabs(m.adjoint(id));
          });
      break;
    case ad::SweepKind::Vector:
      dispatch(
          std::type_identity<ad::VectorAdjoints>{},
          [](ad::VectorAdjoints& m, ad::Identifier id, std::size_t w) {
            m.seed(id, w, 1.0);
          },
          [](const ad::VectorAdjoints& m, ad::Identifier id, std::size_t w) {
            return std::fabs(m.adjoint(id, w));
          });
      break;
    case ad::SweepKind::Bitset:
      dispatch(
          std::type_identity<ad::BitsetAdjoints>{},
          [](ad::BitsetAdjoints& m, ad::Identifier id, std::size_t w) {
            m.seed(id, w);
          },
          [](const ad::BitsetAdjoints& m, ad::Identifier id, std::size_t w) {
            return m.test(id, w) ? 1.0 : 0.0;
          });
      break;
  }

  result.sweep_seconds = sweep_seconds;
  result.harvest_seconds = harvest_seconds;
  result.sweep_passes = sweep_passes;
  // Refresh the tape stats now that the sweeps ran: the spill/reload
  // counters and the resident peak only move during evaluation.  On the
  // unlimited path nothing changed since recording, so this is the same
  // capacity-based figure as before.
  result.tape_stats = tape.stats();
  result.total_seconds = total_timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// ReadSet
// ---------------------------------------------------------------------------

AnalysisResult analyze_read_set(ReadSetInstance& app,
                                std::string_view program_name,
                                const AnalysisConfig& cfg) {
  Timer total_timer;
  AnalysisResult result;
  result.program = program_name;
  result.mode = AnalysisMode::ReadSet;

  app.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) app.step();

  const std::vector<BindingInfo> infos = app.binding_info();
  init_result_variables(result, infos, cfg, /*default_critical=*/false);

  std::uint64_t total_components = 0;
  for (const BindingInfo& info : infos) {
    if (!info.is_integer) total_components += info.num_components();
  }
  ad::ReadSetTracker tracker(static_cast<std::size_t>(total_components));

  Timer record_timer;
  {
    ad::ActiveTrackerGuard guard(tracker);
    const std::uint64_t marked = app.mark_origins();
    SCRUTINY_REQUIRE(marked == total_components,
                     "program marked a different component count than its "
                     "bindings describe");
    for (int s = 0; s < cfg.window_steps; ++s) app.step();
    result.num_outputs = app.num_outputs();
  }
  result.record_seconds = record_timer.seconds();

  std::size_t offset = 0;
  for (std::size_t b = 0; b < infos.size(); ++b) {
    if (infos[b].is_integer) continue;
    VariableCriticality& variable = result.variables[b];
    const std::uint32_t comps = infos[b].components_per_element;
    const std::size_t components =
        static_cast<std::size_t>(infos[b].num_components());
    for (std::size_t c = 0; c < components; ++c) {
      if (tracker.was_read(offset + c)) {
        variable.mask.set(c / comps, true);
      }
    }
    offset += components;
  }
  result.total_seconds = total_timer.seconds();
  return result;
}

// ---------------------------------------------------------------------------
// ForwardAD / FiniteDiff — per-element replay from a warmed-up base copy
// ---------------------------------------------------------------------------

AnalysisResult analyze_forward_ad(ProgramInstance<ad::Dual>& base,
                                  std::string_view program_name,
                                  const AnalysisConfig& cfg) {
  Timer total_timer;
  AnalysisResult result;
  result.program = program_name;
  result.mode = AnalysisMode::ForwardAD;

  base.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) base.step();

  std::vector<VarBind<ad::Dual>> base_binds = base.checkpoint_bindings();
  // Unprobed elements (sampling) stay conservatively critical.
  init_result_variables(result, base_binds, cfg, /*default_critical=*/true);

  const std::uint64_t stride = std::max<std::uint64_t>(1, cfg.sample_stride);
  const std::vector<ProbeSite> sites =
      collect_probe_sites(base_binds, stride);
  std::vector<std::uint8_t> verdict(sites.size(), 0);  // 1 = critical

  Timer record_timer;
#if defined(SCRUTINY_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const std::unique_ptr<ProgramInstance<ad::Dual>> run = base.clone();
    std::vector<VarBind<ad::Dual>> binds = run->checkpoint_bindings();
    binds[sites[p].bind_index].values[sites[p].component_index]
        .set_derivative(1.0);
    for (int s = 0; s < cfg.window_steps; ++s) run->step();
    for (const ad::Dual& out : run->outputs()) {
      if (std::fabs(out.derivative()) > cfg.threshold) {
        verdict[p] = 1;
        break;
      }
    }
  }
  result.record_seconds = record_timer.seconds();

  fold_probe_verdicts(result, base_binds, sites, verdict);

  result.num_outputs = base.outputs().size();
  result.total_seconds = total_timer.seconds();
  return result;
}

AnalysisResult analyze_finite_diff(ProgramInstance<double>& base,
                                   std::string_view program_name,
                                   const AnalysisConfig& cfg) {
  Timer total_timer;
  AnalysisResult result;
  result.program = program_name;
  result.mode = AnalysisMode::FiniteDiff;

  base.init();
  for (int s = 0; s < cfg.warmup_steps; ++s) base.step();

  std::vector<VarBind<double>> base_binds = base.checkpoint_bindings();
  init_result_variables(result, base_binds, cfg, /*default_critical=*/true);

  const std::uint64_t stride = std::max<std::uint64_t>(1, cfg.sample_stride);
  const std::vector<ProbeSite> sites =
      collect_probe_sites(base_binds, stride);
  std::vector<std::uint8_t> verdict(sites.size(), 0);

  auto run_window = [&cfg, &base](std::size_t bind_index,
                                  std::size_t component, double delta) {
    const std::unique_ptr<ProgramInstance<double>> run = base.clone();
    std::vector<VarBind<double>> binds = run->checkpoint_bindings();
    binds[bind_index].values[component] += delta;
    for (int s = 0; s < cfg.window_steps; ++s) run->step();
    return run->outputs();
  };

  Timer record_timer;
#if defined(SCRUTINY_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic, 4)
#endif
  for (std::size_t p = 0; p < sites.size(); ++p) {
    const auto [b, c] = sites[p];
    const double x = base_binds[b].values[c];
    const double h = std::max(1e-6, std::fabs(x) * 1e-7);
    const std::vector<double> plus = run_window(b, c, +h);
    const std::vector<double> minus = run_window(b, c, -h);
    for (std::size_t m = 0; m < plus.size(); ++m) {
      const double d = std::fabs(plus[m] - minus[m]) / (2.0 * h);
      if (d > cfg.threshold) {
        verdict[p] = 1;
        break;
      }
    }
  }
  result.record_seconds = record_timer.seconds();

  fold_probe_verdicts(result, base_binds, sites, verdict);

  result.num_outputs = base.outputs().size();
  result.total_seconds = total_timer.seconds();
  return result;
}

}  // namespace scrutiny::core
