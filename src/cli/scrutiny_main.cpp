// scrutiny — command-line front end.
//
// Subcommands:
//   analyze <bench> [--mode reverse-ad|forward-ad|read-set|finite-diff]
//                   [--sweep scalar|vector|bitset] [--warmup N] [--window N]
//                   [--threshold X] [--sample-stride N] [--impact]
//       Run the criticality analysis and print the Table II rows.
//   storage <bench> [--dir PATH]
//       Write full + pruned checkpoints and print the Table III row.
//   verify <bench> [--dir PATH]
//       Run the §IV-C restart verification protocol.
//   viz <bench> <variable> [--out PATH.ppm] [--width N]
//       Emit the critical/uncritical distribution as ASCII + PPM.
//   list
//       Show the benchmark inventory (Table I).
#include <cstdio>
#include <string>

#include "ad/adjoint_models.hpp"
#include "core/report.hpp"
#include "npb/expected_masks.hpp"
#include "npb/paper_reference.hpp"
#include "npb/suite.hpp"
#include "support/cli_args.hpp"
#include "support/error.hpp"
#include "support/format_util.hpp"
#include "support/table_printer.hpp"
#include "viz/viz.hpp"

namespace {

using namespace scrutiny;

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: scrutiny <analyze|storage|verify|viz|list> "
               "[benchmark] [options]\n"
               "\n"
               "  analyze <bench> [--mode reverse-ad|forward-ad|read-set|"
               "finite-diff]\n"
               "                  [--sweep scalar|vector|bitset]\n"
               "                  [--warmup N] [--window N] [--threshold X]\n"
               "                  [--sample-stride N] [--impact]\n"
               "  storage <bench> [--dir PATH]\n"
               "  verify  <bench> [--dir PATH]\n"
               "  viz     <bench> <variable> [--out PATH.ppm] [--width N]\n"
               "  list\n"
               "\n"
               "benchmarks: BT SP LU MG CG FT EP IS\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

core::AnalysisMode parse_mode(const std::string& text) {
  if (text == "reverse-ad") return core::AnalysisMode::ReverseAD;
  if (text == "forward-ad") return core::AnalysisMode::ForwardAD;
  if (text == "read-set") return core::AnalysisMode::ReadSet;
  if (text == "finite-diff") return core::AnalysisMode::FiniteDiff;
  throw ScrutinyError("unknown analysis mode: " + text);
}

ad::SweepKind parse_sweep(const std::string& text) {
  const auto kind = ad::parse_sweep_kind(text);
  if (!kind.has_value()) {
    throw ScrutinyError("unknown sweep kind: " + text +
                        " (expected scalar, vector, or bitset)");
  }
  return *kind;
}

int cmd_list() {
  TablePrinter table({"Benchmark", "Variable", "Elements", "Type"});
  for (npb::BenchmarkId id : npb::all_benchmarks()) {
    const auto analysis = npb::analyze_benchmark(
        id, npb::default_analysis_config(
                id, id == npb::BenchmarkId::IS
                        ? core::AnalysisMode::ReadSet
                        : core::AnalysisMode::ReverseAD));
    for (const auto& variable : analysis.variables) {
      table.add_row({npb::benchmark_name(id), variable.name,
                     with_commas(variable.total_elements()),
                     variable.is_integer ? "int" : "float"});
    }
    table.add_rule();
  }
  table.print();
  return 0;
}

int cmd_analyze(npb::BenchmarkId id, const CliArgs& args) {
  core::AnalysisConfig cfg = npb::default_analysis_config(
      id, parse_mode(args.get("mode", "reverse-ad")));
  cfg.sweep = parse_sweep(args.get("sweep", ad::sweep_kind_name(cfg.sweep)));
  cfg.warmup_steps = static_cast<int>(args.get_int("warmup",
                                                   cfg.warmup_steps));
  cfg.window_steps = static_cast<int>(args.get_int("window",
                                                   cfg.window_steps));
  cfg.threshold = args.get_double("threshold", cfg.threshold);
  cfg.sample_stride = static_cast<std::uint64_t>(args.get_int(
      "sample-stride", static_cast<std::int64_t>(cfg.sample_stride)));
  if (args.has("impact")) {
    // Only the reverse-AD sweeps accumulate |∂out/∂elem| magnitudes; any
    // other mode would print an all-zeros impact table.
    SCRUTINY_REQUIRE(cfg.mode == core::AnalysisMode::ReverseAD,
                     "--impact requires --mode reverse-ad");
    cfg.capture_impact = true;
  }
  const auto result = npb::analyze_benchmark(id, cfg);
  std::fputs(core::format_analysis_summary(result).c_str(), stdout);
  std::fputs(core::format_criticality_table(result).c_str(), stdout);
  if (cfg.capture_impact) {
    std::fputs(core::format_impact_summary(result).c_str(), stdout);
  }
  return 0;
}

int cmd_storage(npb::BenchmarkId id, const CliArgs& args) {
  const auto analysis = npb::analyze_benchmark(
      id, npb::default_analysis_config(
              id, id == npb::BenchmarkId::IS ? core::AnalysisMode::ReadSet
                                             : core::AnalysisMode::ReverseAD));
  const auto comparison = npb::compare_checkpoint_storage(
      id, analysis, args.get("dir", "scrutiny_ckpt_out"));
  TablePrinter table({"Benchmark", "Original", "Optimized", "Storage saved"});
  table.add_row({comparison.program, human_bytes(comparison.payload_full),
                 human_bytes(comparison.payload_pruned),
                 percent(comparison.payload_saving())});
  table.print();
  return 0;
}

int cmd_verify(npb::BenchmarkId id, const CliArgs& args) {
  const auto analysis = npb::analyze_benchmark(
      id, npb::default_analysis_config(
              id, id == npb::BenchmarkId::IS ? core::AnalysisMode::ReadSet
                                             : core::AnalysisMode::ReverseAD));
  const auto verification = npb::verify_restart(
      id, analysis, args.get("dir", "scrutiny_ckpt_out"));
  std::printf("pruned restart matches uninterrupted run: %s\n",
              verification.pruned_restart_matches ? "YES" : "NO");
  std::printf("critical-corruption detected:             %s\n",
              verification.negative_control_detected ? "YES" : "NO");
  return verification.pruned_restart_matches &&
                 verification.negative_control_detected
             ? 0
             : 1;
}

int cmd_viz(npb::BenchmarkId id, const CliArgs& args) {
  if (args.positional().size() < 3) return usage();
  const std::string variable = args.positional()[2];
  const auto analysis = npb::analyze_benchmark(
      id, npb::default_analysis_config(
              id, id == npb::BenchmarkId::IS ? core::AnalysisMode::ReadSet
                                             : core::AnalysisMode::ReverseAD));
  const auto* result = analysis.find(variable);
  SCRUTINY_REQUIRE(result != nullptr,
                   "no such variable in " + analysis.program + ": " +
                       variable);
  const auto width =
      static_cast<std::size_t>(args.get_int("width", 80));
  std::printf("%s(%s): %s\n", analysis.program.c_str(), variable.c_str(),
              viz::run_length_summary(result->mask).c_str());
  std::printf("[%s]\n", viz::ascii_strip(result->mask, width).c_str());
  const std::string out =
      args.get("out", analysis.program + "_" + variable + ".ppm");
  viz::write_ppm_strip(out, result->mask, 256);
  std::printf("image written: %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  try {
    if (command == "help") {
      print_usage(stdout);
      return 0;
    }
    if (command == "list") return cmd_list();
    if (args.positional().size() < 2) return usage();
    const auto id = npb::parse_benchmark(args.positional()[1]);
    if (!id.has_value()) {
      std::fprintf(stderr, "unknown benchmark: %s\n",
                   args.positional()[1].c_str());
      return 2;
    }
    if (command == "analyze") return cmd_analyze(*id, args);
    if (command == "storage") return cmd_storage(*id, args);
    if (command == "verify") return cmd_verify(*id, args);
    if (command == "viz") return cmd_viz(*id, args);
    return usage();
  } catch (const scrutiny::ScrutinyError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
