// scrutiny — command-line front end.
//
// Subcommands (PROG is any registered program — the NPB suite, the demo
// programs, or anything user code registered; names are case-insensitive):
//   analyze PROG [--mode reverse-ad|forward-ad|read-set|finite-diff]
//                [--sweep scalar|vector|bitset] [--threads N]
//                [--kernel auto|scalar|simd]
//                [--tape-memory-limit BYTES] [--spill-backend file|memory]
//                [--warmup N] [--window N] [--threshold X]
//                [--sample-stride N] [--impact] [--save-masks F.scmask]
//       Run the criticality analysis, print the Table II rows, and
//       optionally persist the masks to an .scmask artifact.
//   storage PROG [--dir PATH] [--backend SPEC]
//                [--masks F.scmask | analysis flags]
//       Write full + pruned checkpoints and print the Table III row plus
//       write timings/throughput.
//   verify  PROG [--dir PATH] [--backend SPEC]
//                [--masks F.scmask | analysis flags]
//       Run the §IV-C restart verification protocol.
//   viz     PROG VAR [--out PATH.ppm] [--width N]
//                    [--masks F.scmask | analysis flags]
//       Emit the critical/uncritical distribution as ASCII + PPM.
//   list
//       Show every registered program and its checkpoint variables.
//
// storage/verify/viz need an analysis; with --masks F.scmask they reuse a
// saved artifact (zero analysis seconds), otherwise they run one, honoring
// the same analysis flags `analyze` takes.
//
// --backend SPEC is the BackendSpec grammar: file:DIR, memory:, or
// remote:HOST:PORT, each optionally +async (file+async:DIR).  The bare
// spellings "file" and "memory" and the --async-io flag remain as aliases
// of the old enum + flag pair.
#include <array>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>

#include "ad/adjoint_models.hpp"
#include "ckpt/async_backend.hpp"
#include "ckpt/backend_spec.hpp"
#include "ckpt/codec.hpp"
#include "ckpt/storage_backend.hpp"
#include "serve/daemon.hpp"
#include "core/analysis_io.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "npb/suite.hpp"
#include "programs/demo_programs.hpp"
#include "support/cli_args.hpp"
#include "support/error.hpp"
#include "support/format_util.hpp"
#include "support/table_printer.hpp"
#include "support/timer.hpp"
#include "viz/viz.hpp"

namespace {

using namespace scrutiny;

void print_usage(std::FILE* stream) {
  std::fprintf(stream,
               "usage: scrutiny <analyze|storage|verify|viz|list> "
               "[program] [options]\n"
               "\n"
               "  analyze PROG [--mode reverse-ad|forward-ad|read-set|"
               "finite-diff]\n"
               "               [--sweep scalar|vector|bitset] "
               "[--threads N]\n"
               "               [--kernel auto|scalar|simd]\n"
               "               [--tape-memory-limit BYTES] "
               "[--spill-backend file|memory]\n"
               "               [--warmup N] [--window N] [--threshold X]\n"
               "               [--sample-stride N] [--impact]\n"
               "               [--save-masks F.scmask]\n"
               "  storage PROG [--dir PATH] [--backend SPEC]\n"
               "               [--codec SPEC] [--keyframe-interval N]\n"
               "               [--lossy-policy f32|f16[:FRACTION]]\n"
               "               [--masks F.scmask | analysis flags]\n"
               "  verify  PROG [--dir PATH] [--backend SPEC]\n"
               "               [--codec SPEC] [--keyframe-interval N]\n"
               "               [--lossy-policy f32|f16[:FRACTION]]\n"
               "               [--masks F.scmask | analysis flags]\n"
               "  viz     PROG VAR [--out PATH.ppm] [--width N]\n"
               "                   [--masks F.scmask | analysis flags]\n"
               "  list\n"
               "\n"
               "--backend SPEC: file:DIR | memory: | remote:HOST:PORT, each\n"
               "optionally +async (file+async:DIR); bare file/memory and\n"
               "--async-io remain as aliases\n"
               "\n"
               "programs: `scrutiny list` shows the registered inventory\n"
               "(NPB: BT SP LU MG CG FT EP IS; demos: HeatRod Heat2d)\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

core::AnalysisMode parse_mode(const std::string& text) {
  if (text == "reverse-ad") return core::AnalysisMode::ReverseAD;
  if (text == "forward-ad") return core::AnalysisMode::ForwardAD;
  if (text == "read-set") return core::AnalysisMode::ReadSet;
  if (text == "finite-diff") return core::AnalysisMode::FiniteDiff;
  throw ScrutinyError("unknown analysis mode: " + text);
}

ad::SweepKind parse_sweep(const std::string& text) {
  const auto kind = ad::parse_sweep_kind(text);
  if (!kind.has_value()) {
    throw ScrutinyError("unknown sweep kind: " + text +
                        " (expected scalar, vector, or bitset)");
  }
  return *kind;
}

ad::KernelChoice parse_kernel(const std::string& text) {
  const auto choice = ad::parse_kernel_choice(text);
  if (!choice.has_value()) {
    throw ScrutinyError("unknown kernel choice: " + text +
                        " (expected auto, scalar, or simd)");
  }
  return *choice;
}

// The analysis flag set shared by analyze/storage/verify/viz; every
// subcommand that runs an analysis honors all of them.
constexpr std::array<std::string_view, 11> kAnalysisFlagNames = {
    "--mode",           "--sweep",  "--threads", "--kernel",
    "--tape-memory-limit", "--spill-backend", "--warmup",
    "--window",         "--threshold", "--sample-stride", "--impact"};

core::AnalysisConfig analysis_config_from_args(
    const core::AnyProgram& program, const CliArgs& args) {
  const core::AnalysisMode default_mode = program.traits().default_mode;
  const core::AnalysisMode mode = parse_mode(
      args.get("mode", core::analysis_mode_name(default_mode)));
  core::AnalysisConfig cfg = program.default_config(mode);
  cfg.sweep = parse_sweep(args.get("sweep", ad::sweep_kind_name(cfg.sweep)));
  // Strictly-parsed non-negative numerics with a type-width ceiling:
  // `--threads -1` and `--warmup 1e99` both die with a clear message.
  auto bounded_uint = [&args](const std::string& key,
                              std::uint64_t fallback,
                              std::uint64_t max_value) {
    const std::uint64_t value = args.get_uint(key, fallback);
    SCRUTINY_REQUIRE(value <= max_value,
                     "--" + key + " value out of range (max " +
                         std::to_string(max_value) + ")");
    return value;
  };
  constexpr std::uint64_t kMaxInt =
      static_cast<std::uint64_t>(std::numeric_limits<int>::max());
  // The CLI defaults to every hardware thread (0); the library default
  // stays serial so programmatic callers opt in explicitly.
  cfg.threads = static_cast<std::uint32_t>(
      bounded_uint("threads", 0, 0xffffffffu));
  // Execution parameter like --threads: which sweep kernel table the
  // tape dispatches to.  Results are bit-identical for every choice.
  cfg.kernel = parse_kernel(
      args.get("kernel", std::string(ad::kernel_choice_name(cfg.kernel))));
  // Like --threads, a pure execution parameter: the CLI default is
  // unlimited (flag omitted).  An explicit 0 is rejected — "no memory"
  // is not a meaningful budget and silently meaning "unlimited" would
  // invert the flag's intent.
  if (args.has("tape-memory-limit")) {
    cfg.tape_memory_limit = args.get_uint("tape-memory-limit", 0);
    SCRUTINY_REQUIRE(cfg.tape_memory_limit > 0,
                     "--tape-memory-limit must be a positive byte count; "
                     "omit the flag for an unlimited resident tape");
  }
  if (args.has("spill-backend")) {
    SCRUTINY_REQUIRE(args.has("tape-memory-limit"),
                     "--spill-backend only applies together with "
                     "--tape-memory-limit");
    const std::string backend = args.get("spill-backend", "file");
    const auto kind = ckpt::parse_backend_kind(backend);
    SCRUTINY_REQUIRE(kind.has_value(),
                     "unknown spill backend: " + backend +
                         " (expected file or memory)");
    cfg.tape_spill_backend = *kind;
  }
  cfg.warmup_steps = static_cast<int>(bounded_uint(
      "warmup", static_cast<std::uint64_t>(cfg.warmup_steps), kMaxInt));
  cfg.window_steps = static_cast<int>(bounded_uint(
      "window", static_cast<std::uint64_t>(cfg.window_steps), kMaxInt));
  cfg.threshold = args.get_double("threshold", cfg.threshold);
  cfg.sample_stride = args.get_uint("sample-stride", cfg.sample_stride);
  if (args.has("impact")) {
    // Only the reverse-AD sweeps accumulate |∂out/∂elem| magnitudes; any
    // other mode would print an all-zeros impact table.
    SCRUTINY_REQUIRE(cfg.mode == core::AnalysisMode::ReverseAD,
                     "--impact requires --mode reverse-ad");
    cfg.capture_impact = true;
  }
  return cfg;
}

/// Populates the session's analysis: from a saved .scmask artifact when
/// --masks is given (and then the expensive sweep is skipped — the printed
/// analysis cost is exactly zero), else by running one now.
void prepare_analysis(core::ScrutinySession& session, const CliArgs& args) {
  if (args.has("masks")) {
    for (std::string_view flag : kAnalysisFlagNames) {
      const std::string key(flag.substr(2));
      SCRUTINY_REQUIRE(!args.has(key),
                       std::string(flag) + " conflicts with --masks: the "
                       "artifact fixes the analysis configuration");
    }
    const std::string path = args.get("masks", "");
    session.load_analysis(path);
    std::printf("analysis seconds: 0.000 (masks loaded from %s)\n",
                path.c_str());
  } else {
    const core::AnalysisConfig cfg =
        analysis_config_from_args(session.program(), args);
    Timer timer;
    session.analyze(cfg);
    std::printf("analysis seconds: %.3f (%s)\n", timer.seconds(),
                core::analysis_mode_name(cfg.mode));
  }
}

int cmd_list(const CliArgs& args) {
  args.require_known({"help"});
  TablePrinter table({"Program", "Variable", "Elements", "Type"});
  for (const std::string& name : core::ProgramRegistry::global().names()) {
    const core::AnyProgram& program =
        core::ProgramRegistry::global().get(name);
    const auto app = program.make_primal();
    app->init();
    for (const core::BindingInfo& info : app->binding_info()) {
      table.add_row({name, info.name, with_commas(info.num_elements),
                     info.is_integer ? "int" : "float"});
    }
    table.add_rule();
  }
  table.print();
  return 0;
}

int cmd_analyze(const core::AnyProgram& program, const CliArgs& args) {
  args.require_known({"help", "mode", "sweep", "threads", "kernel",
                      "tape-memory-limit", "spill-backend", "warmup",
                      "window", "threshold", "sample-stride", "impact",
                      "save-masks"});
  core::ScrutinySession session(program);
  const core::AnalysisConfig cfg = analysis_config_from_args(program, args);
  const core::AnalysisResult& result = session.analyze(cfg);
  std::fputs(core::format_analysis_summary(result).c_str(), stdout);
  std::fputs(core::format_criticality_table(result).c_str(), stdout);
  if (cfg.capture_impact) {
    std::fputs(core::format_impact_summary(result).c_str(), stdout);
  }
  if (args.has("save-masks")) {
    const std::string path = args.get("save-masks", "");
    SCRUTINY_REQUIRE(!path.empty(), "--save-masks needs a file path");
    session.save_analysis(path);
    std::printf("masks saved: %s\n", path.c_str());
  }
  return 0;
}

/// Parses --codec/--keyframe-interval/--lossy-policy onto a CodecConfig.
/// Strict: unknown codec tokens throw naming the inventory, and
/// `--keyframe-interval 0` is rejected outright — a cadence that never
/// writes a keyframe could never restart.
ckpt::CodecConfig codec_config_from_args(const CliArgs& args) {
  ckpt::CodecConfig codec;
  if (args.has("codec")) {
    ckpt::apply_codec_spec(codec, args.get("codec", "prune"));
  }
  if (args.has("keyframe-interval")) {
    const std::uint64_t interval = args.get_uint("keyframe-interval", 0);
    SCRUTINY_REQUIRE(interval > 0,
                     "--keyframe-interval must be >= 1 (1 writes every "
                     "slot as a self-contained keyframe); 0 would never "
                     "write a restorable keyframe");
    codec.keyframe_interval = interval;
  }
  if (args.has("lossy-policy")) {
    // PREC[:FRACTION] — e.g. `f16:0.25` demotes the lowest-impact quarter
    // of each variable's critical elements to binary16.
    const std::string policy = args.get("lossy-policy", "f32");
    std::string precision = policy;
    if (const auto colon = policy.find(':'); colon != std::string::npos) {
      precision = policy.substr(0, colon);
      const std::string fraction_text = policy.substr(colon + 1);
      std::size_t consumed = 0;
      double fraction = -1.0;
      try {
        fraction = std::stod(fraction_text, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      SCRUTINY_REQUIRE(consumed == fraction_text.size() && fraction > 0.0 &&
                           fraction <= 1.0,
                       "--lossy-policy fraction must be in (0, 1]: " +
                           fraction_text);
      codec.low_fraction = fraction;
    }
    if (precision == "f32") {
      codec.precision = ckpt::LossyPrecision::F32;
    } else if (precision == "f16") {
      codec.precision = ckpt::LossyPrecision::F16;
    } else {
      throw ScrutinyError("unknown lossy policy precision: " + precision +
                          " (expected f32 or f16, e.g. --lossy-policy "
                          "f16:0.25)");
    }
    SCRUTINY_REQUIRE(args.has("codec") ? codec.lossy : true,
                     "--lossy-policy only applies when --codec includes "
                     "lossy (e.g. --codec prune+delta+lossy)");
  }
  return codec;
}

/// Builds the storage backend the --backend spec names (file:DIR, memory:,
/// remote:HOST:PORT, each optionally +async — old spellings "file"/"memory"
/// stay as aliases) and seats the session on it.  Returns a description for
/// the report header.
std::string configure_storage(core::ScrutinySession& session,
                              const CliArgs& args) {
  ckpt::BackendSpec spec =
      ckpt::BackendSpec::parse(args.get("backend", "file"));
  // Historical flag, now an alias of the spec's +async modifier.
  if (args.has("async-io")) spec.async = true;
  std::shared_ptr<ckpt::StorageBackend> backend = ckpt::make_backend(spec);
  const std::string description = backend->name();
  session.use_storage(std::move(backend));
  return description;
}

int cmd_storage(const core::AnyProgram& program, const CliArgs& args) {
  args.require_known({"help", "dir", "backend", "async-io", "masks", "mode",
                      "sweep", "threads", "kernel", "tape-memory-limit",
                      "spill-backend", "warmup", "window", "threshold",
                      "sample-stride", "impact", "codec",
                      "keyframe-interval", "lossy-policy"});
  core::ScrutinySession session(program);
  const ckpt::CodecConfig codec = codec_config_from_args(args);
  const std::string backend_name = configure_storage(session, args);
  prepare_analysis(session, args);
  const auto comparison =
      session.compare_storage(args.get("dir", "scrutiny_ckpt_out"), codec);
  // Sample async pressure before the join below empties the pipeline.
  const auto* async = dynamic_cast<ckpt::AsyncBackend*>(&session.storage());
  const std::size_t queue_depth = async ? async->queue_depth() : 0;
  const std::uint64_t bytes_in_flight = async ? async->bytes_in_flight() : 0;
  // Join any async drain before reporting so errors fail the command.
  session.storage().wait();
  std::printf("storage backend: %s\n", backend_name.c_str());
  if (async != nullptr) {
    std::printf("async pressure: queue depth %zu, %s in flight at report, "
                "%s buffer stalls\n",
                queue_depth, human_bytes(bytes_in_flight).c_str(),
                with_commas(async->buffer_stalls()).c_str());
  }
  TablePrinter table({"Benchmark", "Original", "Optimized", "Storage saved",
                      "Write (full/pruned)", "MB/s (full/pruned)"});
  table.add_row({comparison.program, human_bytes(comparison.payload_full),
                 human_bytes(comparison.payload_pruned),
                 percent(comparison.payload_saving()),
                 seconds(comparison.seconds_full) + " / " +
                     seconds(comparison.seconds_pruned),
                 mb_per_second(comparison.file_full,
                               comparison.seconds_full) +
                     " / " +
                     mb_per_second(comparison.file_pruned,
                                   comparison.seconds_pruned)});
  table.print();

  // Steady-state codec pipelines: base keyframe at the warmup step, then
  // the next slot through the pipeline one step later.  Ratio is write-set
  // bytes in over container bytes out; the CPU/IO split keeps MB/s an
  // honest I/O number even when the codec burns cycles diffing.
  if (!comparison.codec_rows.empty()) {
    TablePrinter codecs({"Codec", "Base", "Steady", "Ratio",
                         "Codec CPU / IO", "MB/s"});
    for (const auto& row : comparison.codec_rows) {
      codecs.add_row({row.codec, human_bytes(row.base_file),
                      human_bytes(row.steady_file),
                      fixed(row.compression(), 1) + "x",
                      seconds(row.codec_seconds) + " / " +
                          seconds(row.io_seconds),
                      fixed(row.mb_per_second(), 1)});
    }
    codecs.print();
  }
  return 0;
}

int cmd_verify(const core::AnyProgram& program, const CliArgs& args) {
  args.require_known({"help", "dir", "backend", "async-io", "masks", "mode",
                      "sweep", "threads", "kernel", "tape-memory-limit",
                      "spill-backend", "warmup", "window", "threshold",
                      "sample-stride", "impact", "codec",
                      "keyframe-interval", "lossy-policy"});
  core::ScrutinySession session(program);
  const bool codec_run = args.has("codec") ||
                         args.has("keyframe-interval") ||
                         args.has("lossy-policy");
  const ckpt::CodecConfig codec = codec_config_from_args(args);
  configure_storage(session, args);
  prepare_analysis(session, args);
  const std::string dir = args.get("dir", "scrutiny_ckpt_out");
  const auto verification = codec_run ? session.verify_restart(dir, codec)
                                      : session.verify_restart(dir);
  session.storage().wait();
  if (codec_run) {
    std::printf("codec: %s (keyframe interval %llu), restored step %llu\n",
                verification.codec.c_str(),
                static_cast<unsigned long long>(codec.keyframe_interval),
                static_cast<unsigned long long>(verification.restored_step));
    std::printf("restored state within per-variable tolerance: %s\n",
                verification.restored_state_matches ? "YES" : "NO");
  }
  std::printf("pruned restart matches uninterrupted run: %s\n",
              verification.pruned_restart_matches ? "YES" : "NO");
  std::printf("critical-corruption detected:             %s\n",
              verification.negative_control_detected ? "YES" : "NO");
  return verification.pruned_restart_matches &&
                 verification.negative_control_detected
             ? 0
             : 1;
}

int cmd_viz(const core::AnyProgram& program, const CliArgs& args) {
  args.require_known({"help", "out", "width", "masks", "mode", "sweep",
                      "threads", "kernel", "tape-memory-limit",
                      "spill-backend", "warmup", "window", "threshold",
                      "sample-stride", "impact"});
  if (args.positional().size() < 3) return usage();
  const std::string variable = args.positional()[2];
  core::ScrutinySession session(program);
  prepare_analysis(session, args);
  const core::AnalysisResult& analysis = session.analysis();
  const auto* result = analysis.find(variable);
  SCRUTINY_REQUIRE(result != nullptr,
                   "no such variable in " + analysis.program + ": " +
                       variable);
  const auto width =
      static_cast<std::size_t>(args.get_uint("width", 80));
  std::printf("%s(%s): %s\n", analysis.program.c_str(), variable.c_str(),
              viz::run_length_summary(result->mask).c_str());
  std::printf("[%s]\n", viz::ascii_strip(result->mask, width).c_str());
  const std::string out =
      args.get("out", analysis.program + "_" + variable + ".ppm");
  viz::write_ppm_strip(out, result->mask, 256);
  std::printf("image written: %s\n", out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  npb::register_suite();
  programs::register_demo_programs();
  serve::register_remote_scheme();
  try {
    if (command == "help") {
      print_usage(stdout);
      return 0;
    }
    if (command == "list") return cmd_list(args);
    if (args.positional().size() < 2) return usage();
    const core::AnyProgram* program =
        core::ProgramRegistry::global().find(args.positional()[1]);
    if (program == nullptr) {
      std::fprintf(stderr, "unknown program: %s (registered:%s)\n",
                   args.positional()[1].c_str(),
                   core::ProgramRegistry::global().inventory().c_str());
      return 2;
    }
    if (command == "analyze") return cmd_analyze(*program, args);
    if (command == "storage") return cmd_storage(*program, args);
    if (command == "verify") return cmd_verify(*program, args);
    if (command == "viz") return cmd_viz(*program, args);
    return usage();
  } catch (const scrutiny::ScrutinyError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    // Resource failures from below the library (thread spawn, bad_alloc)
    // must exit with a message, never std::terminate.
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
