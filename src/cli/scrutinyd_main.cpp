// scrutinyd — the checkpoint-service front end.
//
// Subcommands:
//   simulate [--sessions N] [--tenants K] [--steps N] [--interval N]
//            [--elements N] [--keep-slots N] [--compute-millis X]
//            [--shards N] [--workers N] [--inflight-cap N] [--quota BYTES]
//            [--buffer-budget BYTES] [--backend memory|file] [--dir PATH]
//            [--full] [--chaos torn,slow,crash,bitflip|all|none]
//            [--chaos-seed N] [--no-negative-control]
//       Drive N concurrent sessions through the shared service (sharded
//       store + bounded write scheduler), optionally under chaos, then
//       fail every node, restart each session from storage, and verify
//       the restored state.  Exits nonzero unless every session restarts
//       from a valid slot and every negative control detects corruption.
#include <cstdio>
#include <sstream>
#include <string>

#include "ckpt/codec.hpp"
#include "serve/simulator.hpp"
#include "support/cli_args.hpp"
#include "support/error.hpp"
#include "support/format_util.hpp"
#include "support/table_printer.hpp"

namespace {

using namespace scrutiny;

void print_usage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: scrutinyd simulate [options]\n"
      "\n"
      "  workload:\n"
      "    --sessions N        concurrent sessions (default 4)\n"
      "    --tenants K         tenants, sessions assigned round-robin "
      "(default 2)\n"
      "    --steps N           compute steps per session (default 24)\n"
      "    --interval N        checkpoint every N steps (default 4)\n"
      "    --elements N        doubles of state per session (default 4096)\n"
      "    --keep-slots N      checkpoint slots retained (default 2)\n"
      "    --compute-millis X  simulated compute per step (default 0)\n"
      "    --full              write full checkpoints (default: pruned)\n"
      "    --codec SPEC        payload pipeline every session runs\n"
      "                        (prune, prune+delta, prune+delta+lossy, "
      "...),\n"
      "                        or `mixed` to cycle the pipelines per "
      "session\n"
      "    --keyframe-interval N  self-contained slot every N slots "
      "(default 8)\n"
      "  service:\n"
      "    --shards N          store shards (default 8)\n"
      "    --workers N         shared drain pool threads (default 2)\n"
      "    --inflight-cap N    concurrent drains per tenant (default 1)\n"
      "    --quota BYTES       per-tenant undrained-byte quota (default "
      "unlimited)\n"
      "    --buffer-budget B   global staging budget bytes (default 256M)\n"
      "    --backend KIND      memory|file (default memory)\n"
      "    --dir PATH          file-backend root (default scrutinyd_store)\n"
      "  chaos:\n"
      "    --chaos MODES       comma list of torn,slow,crash,bitflip;\n"
      "                        or all / none (default none)\n"
      "    --chaos-seed N      deterministic chaos seed (default "
      "0x5c201a)\n"
      "    --no-negative-control  skip the corrupt-critical control\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// `torn,slow` / `all` / `none` → probabilities in the config.
void apply_chaos_modes(serve::SimulatorConfig& config,
                       const std::string& modes) {
  std::stringstream stream(modes);
  std::string mode;
  while (std::getline(stream, mode, ',')) {
    if (mode.empty() || mode == "none") continue;
    if (mode == "torn" || mode == "all") {
      config.chaos.torn_write_probability = 0.15;
    }
    if (mode == "slow" || mode == "all") {
      config.chaos.slow_drain_probability = 0.25;
    }
    if (mode == "crash" || mode == "all") config.crash_probability = 0.3;
    if (mode == "bitflip" || mode == "all") {
      config.bitflip_final_probability = 0.5;
    }
    if (mode != "torn" && mode != "slow" && mode != "crash" &&
        mode != "bitflip" && mode != "all") {
      throw ScrutinyError("unknown chaos mode: " + mode +
                          " (expected torn, slow, crash, bitflip, all, "
                          "or none)");
    }
  }
}

int cmd_simulate(const CliArgs& args) {
  args.require_known({"help", "sessions", "tenants", "steps", "interval",
                      "elements", "keep-slots", "compute-millis", "full",
                      "shards", "workers", "inflight-cap", "quota",
                      "buffer-budget", "backend", "dir", "chaos",
                      "chaos-seed", "no-negative-control", "codec",
                      "keyframe-interval"});
  serve::SimulatorConfig config;
  config.sessions = args.get_uint("sessions", 4);
  config.tenants = args.get_uint("tenants", 2);
  config.steps = args.get_uint("steps", 24);
  config.interval = args.get_uint("interval", 4);
  config.elements = args.get_uint("elements", 4096);
  config.keep_slots =
      static_cast<std::uint32_t>(args.get_uint("keep-slots", 2));
  config.compute_millis = args.get_double("compute-millis", 0.0);
  config.pruned = !args.has("full");
  config.negative_control = !args.has("no-negative-control");
  if (args.has("codec")) {
    const std::string spec = args.get("codec", "prune");
    if (spec == "mixed") {
      config.mixed_codecs = true;
    } else {
      ckpt::apply_codec_spec(config.codec, spec);
    }
  }
  if (args.has("keyframe-interval")) {
    const std::uint64_t interval = args.get_uint("keyframe-interval", 0);
    SCRUTINY_REQUIRE(interval > 0,
                     "--keyframe-interval must be >= 1; 0 would never "
                     "write a restorable keyframe");
    config.codec.keyframe_interval = interval;
  }

  config.service.store.num_shards = args.get_uint("shards", 8);
  const std::string kind_text = args.get("backend", "memory");
  const auto kind = ckpt::parse_backend_kind(kind_text);
  SCRUTINY_REQUIRE(kind.has_value(),
                   "unknown storage backend: " + kind_text +
                       " (expected file or memory)");
  config.service.store.kind = *kind;
  config.service.store.root = args.get("dir", "scrutinyd_store");
  config.service.scheduler.workers = args.get_uint("workers", 2);
  config.service.scheduler.tenant_inflight_cap =
      args.get_uint("inflight-cap", 1);
  config.service.scheduler.tenant_pending_quota = args.get_uint("quota", 0);
  config.service.scheduler.max_buffered_bytes =
      args.get_uint("buffer-budget", std::uint64_t{256} << 20);
  config.chaos.seed = args.get_uint("chaos-seed", config.seed);
  config.seed = config.chaos.seed;
  apply_chaos_modes(config, args.get("chaos", "none"));

  const serve::SimulationReport report = serve::run_simulation(config);

  TablePrinter table({"Tenant", "Program", "Codec", "Ckpts", "IO errs",
                      "Crashed", "Restored step", "Restart", "Verified"});
  for (const serve::SessionResult& session : report.sessions) {
    table.add_row(
        {session.tenant, session.program, session.codec,
         with_commas(session.checkpoints_committed),
         with_commas(session.storage_errors + session.quota_skips),
         session.crashed ? "yes" : "-",
         session.restored_step ? with_commas(*session.restored_step) : "-",
         session.restart_valid ? "valid" : "INVALID",
         session.verified ? "yes" : "NO"});
  }
  table.print();

  std::printf("sessions: %zu over %zu tenant(s), %zu shard(s), %s drained "
              "in %s (%s MB/s aggregate)\n",
              report.sessions.size(),
              static_cast<std::size_t>(config.tenants), report.shards,
              human_bytes(report.bytes_committed).c_str(),
              seconds(report.write_wall_seconds).c_str(),
              fixed(report.mb_per_second(), 1).c_str());
  std::printf("scheduler: %s submitted, %s completed, %s failed; peak "
              "in-flight %s / queue %s; stalls %s, quota rejections %s\n",
              with_commas(report.scheduler.submitted).c_str(),
              with_commas(report.scheduler.completed).c_str(),
              with_commas(report.scheduler.failed).c_str(),
              human_bytes(report.scheduler.peak_bytes_in_flight).c_str(),
              with_commas(report.scheduler.peak_queue_depth).c_str(),
              with_commas(report.scheduler.admission_stalls).c_str(),
              with_commas(report.scheduler.quota_rejections).c_str());
  std::printf("chaos: %s torn writes, %s slow drains, %s bit flips, %s "
              "crashes; %s drain errors surfaced\n",
              with_commas(report.torn_writes).c_str(),
              with_commas(report.slow_drains).c_str(),
              with_commas(report.bitflips).c_str(),
              with_commas(report.crashes).c_str(),
              with_commas(report.drain_errors_surfaced).c_str());
  std::printf("durability: every session restarts from a valid slot: %s\n",
              report.ok() ? "YES" : "NO");
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  try {
    if (command == "help") {
      print_usage(stdout);
      return 0;
    }
    if (command == "simulate") return cmd_simulate(args);
    return usage();
  } catch (const scrutiny::ScrutinyError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
