// scrutinyd — the checkpoint-service front end.
//
// Subcommands:
//   serve    [--port N] [--token SECRET] [--backend SPEC] [--dir PATH]
//            [--shards N] [--workers N] [--inflight-cap N] [--quota BYTES]
//            [--buffer-budget BYTES] [--log-interval N]
//            [--net-chaos drop-stream,drop-ack,stall|all|none]
//            [--chaos-seed N] [--stall-ms N]
//       Run the checkpoint daemon: accept TCP clients on 127.0.0.1, speak
//       the serve/api.hpp wire protocol, and multiplex every authenticated
//       tenant session onto the shared service (sharded store + bounded
//       write scheduler).  Prints the bound port on stdout (use --port 0
//       for an ephemeral port), then blocks until SIGINT/SIGTERM.
//   simulate [--sessions N] [--tenants K] [--steps N] [--interval N]
//            [--elements N] [--keep-slots N] [--compute-millis X]
//            [--shards N] [--workers N] [--inflight-cap N] [--quota BYTES]
//            [--buffer-budget BYTES] [--backend SPEC] [--dir PATH]
//            [--full] [--chaos torn,slow,crash,bitflip|all|none]
//            [--chaos-seed N] [--no-negative-control]
//            [--token SECRET] [--tenant-prefix P]
//       Drive N concurrent sessions through the service, optionally under
//       chaos, then fail every node, restart each session from storage,
//       and verify the restored state.  With --backend remote:HOST:PORT
//       every session becomes a real network client of a running daemon —
//       the out-of-process end-to-end shape.  Exits nonzero unless every
//       session restarts from a valid slot and every negative control
//       detects corruption.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#include "ckpt/backend_spec.hpp"
#include "ckpt/codec.hpp"
#include "serve/daemon.hpp"
#include "serve/simulator.hpp"
#include "support/cli_args.hpp"
#include "support/error.hpp"
#include "support/format_util.hpp"
#include "support/table_printer.hpp"

namespace {

using namespace scrutiny;

void print_usage(std::FILE* stream) {
  std::fprintf(
      stream,
      "usage: scrutinyd serve|simulate [options]\n"
      "\n"
      "serve — run the checkpoint daemon (blocks until SIGINT/SIGTERM):\n"
      "    --port N            listen port on 127.0.0.1; 0 picks an\n"
      "                        ephemeral port (default 0); the bound port\n"
      "                        is printed on stdout either way\n"
      "    --token SECRET      require this auth token at handshake\n"
      "                        (default: no auth)\n"
      "    --backend SPEC      daemon store: file:DIR or memory:\n"
      "                        (default memory:)\n"
      "    --dir PATH          file-store root when the spec names none\n"
      "                        (default scrutinyd_store)\n"
      "    --shards N          store shards (default 8)\n"
      "    --workers N         shared drain pool threads (default 2)\n"
      "    --inflight-cap N    concurrent drains per tenant (default 1)\n"
      "    --quota BYTES       per-tenant undrained-byte quota (default\n"
      "                        unlimited)\n"
      "    --buffer-budget B   global staging budget bytes (default 256M)\n"
      "    --log-interval N    seconds between per-tenant pressure log\n"
      "                        lines; 0 disables (default 10)\n"
      "    --net-chaos MODES   comma list of drop-stream,drop-ack,stall;\n"
      "                        or all / none (default none)\n"
      "    --chaos-seed N      deterministic chaos seed (default 0x5c201a)\n"
      "    --stall-ms N        stall duration for the stall mode "
      "(default 50)\n"
      "\n"
      "simulate — multi-session durability simulation:\n"
      "  workload:\n"
      "    --sessions N        concurrent sessions (default 4)\n"
      "    --tenants K         tenants, sessions assigned round-robin "
      "(default 2)\n"
      "    --steps N           compute steps per session (default 24)\n"
      "    --interval N        checkpoint every N steps (default 4)\n"
      "    --elements N        doubles of state per session (default 4096)\n"
      "    --keep-slots N      checkpoint slots retained (default 2)\n"
      "    --compute-millis X  simulated compute per step (default 0)\n"
      "    --full              write full checkpoints (default: pruned)\n"
      "    --codec SPEC        payload pipeline every session runs\n"
      "                        (prune, prune+delta, prune+delta+lossy, "
      "...),\n"
      "                        or `mixed` to cycle the pipelines per "
      "session\n"
      "    --keyframe-interval N  self-contained slot every N slots "
      "(default 8)\n"
      "  storage:\n"
      "    --backend SPEC      memory: | file:DIR | remote:HOST:PORT\n"
      "                        (default memory:; bare `memory`/`file` "
      "aliases\n"
      "                        work).  remote: makes every session a real\n"
      "                        network client of a running daemon;\n"
      "                        remote+async: adds the client-side double "
      "buffer\n"
      "    --dir PATH          file-store root when the spec names none\n"
      "                        (default scrutinyd_store)\n"
      "    --token SECRET      auth token for remote sessions\n"
      "    --tenant-prefix P   tenants are named P0..P<K-1> (default "
      "tenant)\n"
      "  service (in-process backends only):\n"
      "    --shards N          store shards (default 8)\n"
      "    --workers N         shared drain pool threads (default 2)\n"
      "    --inflight-cap N    concurrent drains per tenant (default 1)\n"
      "    --quota BYTES       per-tenant undrained-byte quota (default "
      "unlimited)\n"
      "    --buffer-budget B   global staging budget bytes (default 256M)\n"
      "  chaos:\n"
      "    --chaos MODES       comma list of torn,slow,crash,bitflip;\n"
      "                        or all / none (default none; torn, slow and\n"
      "                        bitflip are storage-side and rejected under\n"
      "                        a remote backend — use the daemon's\n"
      "                        --net-chaos instead)\n"
      "    --chaos-seed N      deterministic chaos seed (default "
      "0x5c201a)\n"
      "    --no-negative-control  skip the corrupt-critical control\n");
}

int usage() {
  print_usage(stderr);
  return 2;
}

/// `torn,slow` / `all` / `none` → probabilities in the config.
void apply_chaos_modes(serve::SimulatorConfig& config,
                       const std::string& modes) {
  std::stringstream stream(modes);
  std::string mode;
  while (std::getline(stream, mode, ',')) {
    if (mode.empty() || mode == "none") continue;
    if (mode == "torn" || mode == "all") {
      config.chaos.torn_write_probability = 0.15;
    }
    if (mode == "slow" || mode == "all") {
      config.chaos.slow_drain_probability = 0.25;
    }
    if (mode == "crash" || mode == "all") config.crash_probability = 0.3;
    if (mode == "bitflip" || mode == "all") {
      config.bitflip_final_probability = 0.5;
    }
    if (mode != "torn" && mode != "slow" && mode != "crash" &&
        mode != "bitflip" && mode != "all") {
      throw ScrutinyError("unknown chaos mode: " + mode +
                          " (expected torn, slow, crash, bitflip, all, "
                          "or none)");
    }
  }
}

/// `drop-stream,stall` / `all` / `none` → daemon-side fault rates.
void apply_net_chaos_modes(serve::NetChaosConfig& chaos,
                           const std::string& modes) {
  std::stringstream stream(modes);
  std::string mode;
  while (std::getline(stream, mode, ',')) {
    if (mode.empty() || mode == "none") continue;
    if (mode == "drop-stream" || mode == "all") {
      chaos.drop_mid_stream_rate = 0.15;
    }
    if (mode == "drop-ack" || mode == "all") chaos.drop_ack_rate = 0.15;
    if (mode == "stall" || mode == "all") chaos.stall_ack_rate = 0.25;
    if (mode != "drop-stream" && mode != "drop-ack" && mode != "stall" &&
        mode != "all") {
      throw ScrutinyError("unknown net-chaos mode: " + mode +
                          " (expected drop-stream, drop-ack, stall, all, "
                          "or none)");
    }
  }
}

/// Shared --shards/--workers/--inflight-cap/--quota/--buffer-budget block.
void apply_service_flags(const CliArgs& args, serve::ServiceConfig& config) {
  config.store.num_shards = args.get_uint("shards", 8);
  config.scheduler.workers = args.get_uint("workers", 2);
  config.scheduler.tenant_inflight_cap = args.get_uint("inflight-cap", 1);
  config.scheduler.tenant_pending_quota = args.get_uint("quota", 0);
  config.scheduler.max_buffered_bytes =
      args.get_uint("buffer-budget", std::uint64_t{256} << 20);
}

/// Maps an in-process BackendSpec (file:/memory:) onto the sharded store.
/// The daemon and the in-process simulation both refuse remote here — a
/// service cannot seat its shards on another daemon.
void apply_store_spec(const ckpt::BackendSpec& spec,
                      const std::string& fallback_dir,
                      serve::ServiceConfig& config) {
  SCRUTINY_REQUIRE(spec.scheme != ckpt::BackendScheme::Remote,
                   "the service store must be local; --backend must be "
                   "file:DIR or memory: here");
  SCRUTINY_REQUIRE(!spec.async,
                   "+async does not apply to the service store; the write "
                   "scheduler already drains in the background");
  config.store.kind = spec.scheme == ckpt::BackendScheme::File
                          ? ckpt::BackendKind::File
                          : ckpt::BackendKind::Memory;
  config.store.root =
      spec.directory.empty() ? fallback_dir : spec.directory;
}

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_stop_signal(int) { g_stop_requested = 1; }

int cmd_serve(const CliArgs& args) {
  args.require_known({"help", "port", "token", "backend", "dir", "shards",
                      "workers", "inflight-cap", "quota", "buffer-budget",
                      "log-interval", "net-chaos", "chaos-seed",
                      "stall-ms"});
  serve::DaemonConfig config;
  config.port = static_cast<std::uint16_t>(args.get_uint("port", 0));
  config.auth_token = args.get("token", "");
  apply_store_spec(ckpt::BackendSpec::parse(args.get("backend", "memory")),
                   args.get("dir", "scrutinyd_store"), config.service);
  apply_service_flags(args, config.service);
  config.log_interval_s =
      static_cast<std::uint32_t>(args.get_uint("log-interval", 10));
  config.chaos.seed = args.get_uint("chaos-seed", 0x5c201aull);
  config.chaos.stall_ms =
      static_cast<std::uint32_t>(args.get_uint("stall-ms", 50));
  apply_net_chaos_modes(config.chaos, args.get("net-chaos", "none"));

  serve::CheckpointDaemon daemon(config);
  daemon.start();
  // Fixtures (and humans with --port 0) parse this line for the port;
  // flush so a pipe sees it before the first client connects.
  std::printf("scrutinyd: listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(daemon.port()));
  std::fflush(stdout);

  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  while (g_stop_requested == 0 && daemon.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "scrutinyd: shutting down\n");
  daemon.stop();

  const serve::DaemonStats stats = daemon.stats();
  std::printf("scrutinyd: %s connection(s) (%s rejected), %s request(s), "
              "%s commit(s) (%s deduped), %s protocol error(s)\n",
              with_commas(stats.connections_accepted).c_str(),
              with_commas(stats.connections_rejected).c_str(),
              with_commas(stats.requests).c_str(),
              with_commas(stats.commits).c_str(),
              with_commas(stats.deduped_commits).c_str(),
              with_commas(stats.protocol_errors).c_str());
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  args.require_known({"help", "sessions", "tenants", "steps", "interval",
                      "elements", "keep-slots", "compute-millis", "full",
                      "shards", "workers", "inflight-cap", "quota",
                      "buffer-budget", "backend", "dir", "chaos",
                      "chaos-seed", "no-negative-control", "codec",
                      "keyframe-interval", "token", "tenant-prefix"});
  serve::SimulatorConfig config;
  config.sessions = args.get_uint("sessions", 4);
  config.tenants = args.get_uint("tenants", 2);
  config.steps = args.get_uint("steps", 24);
  config.interval = args.get_uint("interval", 4);
  config.elements = args.get_uint("elements", 4096);
  config.keep_slots =
      static_cast<std::uint32_t>(args.get_uint("keep-slots", 2));
  config.compute_millis = args.get_double("compute-millis", 0.0);
  config.pruned = !args.has("full");
  config.negative_control = !args.has("no-negative-control");
  if (args.has("codec")) {
    const std::string spec = args.get("codec", "prune");
    if (spec == "mixed") {
      config.mixed_codecs = true;
    } else {
      ckpt::apply_codec_spec(config.codec, spec);
    }
  }
  if (args.has("keyframe-interval")) {
    const std::uint64_t interval = args.get_uint("keyframe-interval", 0);
    SCRUTINY_REQUIRE(interval > 0,
                     "--keyframe-interval must be >= 1; 0 would never "
                     "write a restorable keyframe");
    config.codec.keyframe_interval = interval;
  }

  config.storage = ckpt::BackendSpec::parse(args.get("backend", "memory"));
  config.service.store.root = args.get("dir", "scrutinyd_store");
  config.remote_token = args.get("token", "");
  config.tenant_prefix = args.get("tenant-prefix", "tenant");
  apply_service_flags(args, config.service);
  config.chaos.seed = args.get_uint("chaos-seed", config.seed);
  config.seed = config.chaos.seed;
  apply_chaos_modes(config, args.get("chaos", "none"));

  const serve::SimulationReport report = serve::run_simulation(config);
  const bool remote =
      config.storage.scheme == ckpt::BackendScheme::Remote;

  TablePrinter table({"Tenant", "Program", "Codec", "Ckpts", "IO errs",
                      "Crashed", "Restored step", "Restart", "Verified"});
  for (const serve::SessionResult& session : report.sessions) {
    table.add_row(
        {session.tenant, session.program, session.codec,
         with_commas(session.checkpoints_committed),
         with_commas(session.storage_errors + session.quota_skips),
         session.crashed ? "yes" : "-",
         session.restored_step ? with_commas(*session.restored_step) : "-",
         session.restart_valid ? "valid" : "INVALID",
         session.verified ? "yes" : "NO"});
  }
  table.print();

  std::printf("sessions: %zu over %zu tenant(s), %zu shard(s), %s drained "
              "in %s (%s MB/s aggregate)\n",
              report.sessions.size(),
              static_cast<std::size_t>(config.tenants), report.shards,
              human_bytes(report.bytes_committed).c_str(),
              seconds(report.write_wall_seconds).c_str(),
              fixed(report.mb_per_second(), 1).c_str());
  if (remote) {
    std::printf("storage: remote daemon at %s:%u (scheduler pressure is "
                "reported daemon-side)\n",
                config.storage.host.c_str(),
                static_cast<unsigned>(config.storage.port));
  } else {
    std::printf("scheduler: %s submitted, %s completed, %s failed; peak "
                "in-flight %s / queue %s; stalls %s, quota rejections %s\n",
                with_commas(report.scheduler.submitted).c_str(),
                with_commas(report.scheduler.completed).c_str(),
                with_commas(report.scheduler.failed).c_str(),
                human_bytes(report.scheduler.peak_bytes_in_flight).c_str(),
                with_commas(report.scheduler.peak_queue_depth).c_str(),
                with_commas(report.scheduler.admission_stalls).c_str(),
                with_commas(report.scheduler.quota_rejections).c_str());
  }
  std::printf("chaos: %s torn writes, %s slow drains, %s bit flips, %s "
              "crashes; %s drain errors surfaced\n",
              with_commas(report.torn_writes).c_str(),
              with_commas(report.slow_drains).c_str(),
              with_commas(report.bitflips).c_str(),
              with_commas(report.crashes).c_str(),
              with_commas(report.drain_errors_surfaced).c_str());
  std::printf("durability: every session restarts from a valid slot: %s\n",
              report.ok() ? "YES" : "NO");
  return report.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    print_usage(stdout);
    return 0;
  }
  if (args.positional().empty()) return usage();
  const std::string command = args.positional()[0];
  try {
    scrutiny::serve::register_remote_scheme();
    if (command == "help") {
      print_usage(stdout);
      return 0;
    }
    if (command == "serve") return cmd_serve(args);
    if (command == "simulate") return cmd_simulate(args);
    return usage();
  } catch (const scrutiny::ScrutinyError& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
