// A fuller application-level C/R integration: a 2D heat solver with
// ghost-padded storage, driven through CheckpointManager (intervals + slot
// rotation), with a simulated mid-run crash and automatic restart from the
// newest valid pruned checkpoint.
//
// The storage is (n+2)x(n+4): one ghost ring plus two extra padding
// columns — the scrutiny analysis discovers that the padding columns never
// matter and prunes them from every checkpoint.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "ckpt/failure.hpp"
#include "ckpt/manager.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "support/array_nd.hpp"
#include "viz/viz.hpp"

struct Heat2dConfig {
  int n = 48;          // interior cells per side
  double alpha = 0.15;
  int steps = 60;
};

template <typename T>
class Heat2d {
 public:
  using Config = Heat2dConfig;
  static constexpr const char* kName = "Heat2d";

  explicit Heat2d(const Config& config = {}) : cfg_(config) {}

  [[nodiscard]] int rows() const { return cfg_.n + 2; }
  [[nodiscard]] int cols() const { return cfg_.n + 4; }  // +2 dead columns

  void init() {
    step_ = 0;
    grid_.assign(static_cast<std::size_t>(rows() * cols()), T(0));
    auto grid = view();
    for (int r = 0; r < rows(); ++r) {
      for (int c = 0; c < cols(); ++c) {
        grid(r, c) = T(1.0 + 0.5 * std::sin(0.3 * r) * std::cos(0.4 * c));
      }
    }
  }

  void step() {
    auto grid = view();
    std::vector<T> next = grid_;
    scrutiny::View2D<T> out(next.data(), static_cast<std::size_t>(rows()),
                            static_cast<std::size_t>(cols()));
    for (int r = 1; r <= cfg_.n; ++r) {
      for (int c = 1; c <= cfg_.n; ++c) {
        out(r, c) = grid(r, c) + cfg_.alpha * (grid(r - 1, c) +
                                               grid(r + 1, c) +
                                               grid(r, c - 1) +
                                               grid(r, c + 1) -
                                               4.0 * grid(r, c));
      }
    }
    grid_ = std::move(next);
    ++step_;
  }

  std::vector<T> outputs() {
    auto grid = view();
    T energy = T(0);
    for (int r = 0; r <= cfg_.n + 1; ++r) {
      for (int c = 0; c <= cfg_.n + 1; ++c) {
        energy += grid(r, c) * grid(r, c);
      }
    }
    return {energy};
  }

  std::vector<scrutiny::core::VarBind<T>> checkpoint_bindings() {
    std::vector<scrutiny::core::VarBind<T>> binds;
    binds.push_back(scrutiny::core::bind_array<T>(
        "grid", std::span<T>(grid_.data(), grid_.size()),
        {static_cast<std::uint64_t>(rows()),
         static_cast<std::uint64_t>(cols())}));
    binds.push_back(scrutiny::core::bind_integer<T>("step", 1));
    return binds;
  }

  void register_checkpoint(scrutiny::ckpt::CheckpointRegistry& registry)
    requires std::same_as<T, double>
  {
    registry.register_f64("grid",
                          std::span<double>(grid_.data(), grid_.size()),
                          {static_cast<std::uint64_t>(rows()),
                           static_cast<std::uint64_t>(cols())});
    registry.register_scalar("step", step_);
  }

  [[nodiscard]] int current_step() const { return step_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  scrutiny::View2D<T> view() {
    return scrutiny::View2D<T>(grid_.data(),
                               static_cast<std::size_t>(rows()),
                               static_cast<std::size_t>(cols()));
  }

  Config cfg_;
  std::int32_t step_ = 0;
  std::vector<T> grid_;
};

int main() {
  using namespace scrutiny;
  const Heat2dConfig config;

  // ---- analyze once, offline -------------------------------------------
  core::AnalysisConfig analysis_config;
  analysis_config.warmup_steps = 5;
  analysis_config.window_steps = 2;
  const auto analysis =
      core::analyze_program<Heat2d>(config, analysis_config);
  std::printf("%s", core::format_criticality_table(analysis).c_str());
  const auto& mask = analysis.find("grid")->mask;
  std::printf("grid criticality (one row band):\n%s\n",
              viz::ascii_slice(mask,
                               {1, static_cast<std::size_t>(config.n + 2),
                                static_cast<std::size_t>(config.n + 4)},
                               0, 0)
                  .c_str());

  // ---- production run with periodic pruned checkpoints ------------------
  ckpt::ManagerConfig manager_config;
  manager_config.directory = "scrutiny_out/heat2d";
  manager_config.basename = "heat2d";
  manager_config.interval = 10;
  manager_config.keep_slots = 2;
  manager_config.write_regions_sidecar = true;
  ckpt::CheckpointManager manager(manager_config);
  manager.set_prune_map(analysis.to_prune_map());

  Heat2d<double> app(config);
  app.init();
  ckpt::CheckpointRegistry registry;
  app.register_checkpoint(registry);

  constexpr int kCrashAt = 37;
  for (int s = 1; s <= kCrashAt; ++s) {
    app.step();
    if (const auto report = manager.maybe_checkpoint(
            static_cast<std::uint64_t>(s), registry)) {
      std::printf("checkpoint @ step %d: %llu bytes (%llu elements "
                  "dropped)\n",
                  s, static_cast<unsigned long long>(report->file_bytes),
                  static_cast<unsigned long long>(
                      report->elements_skipped));
    }
  }
  std::printf("simulated crash at step %d\n", kCrashAt);

  // ---- restart: fresh process, poisoned memory, newest checkpoint -------
  Heat2d<double> restarted(config);
  restarted.init();
  ckpt::CheckpointRegistry restart_registry;
  restarted.register_checkpoint(restart_registry);
  ckpt::FailureInjector().poison_all(restart_registry);
  const auto restore = manager.restart(restart_registry);
  if (!restore.has_value()) {
    std::printf("no usable checkpoint found!\n");
    return 1;
  }
  std::printf("restarted from step %llu (restored %llu elements, left "
              "%llu untouched)\n",
              static_cast<unsigned long long>(restore->step),
              static_cast<unsigned long long>(restore->elements_restored),
              static_cast<unsigned long long>(
                  restore->elements_untouched));
  for (int s = static_cast<int>(restore->step); s < config.steps; ++s) {
    restarted.step();
  }

  // ---- verify against an uninterrupted run ------------------------------
  Heat2d<double> golden(config);
  golden.init();
  for (int s = 0; s < config.steps; ++s) golden.step();

  const double expected = golden.outputs()[0];
  const double actual = restarted.outputs()[0];
  const bool verified = std::fabs(expected - actual) <
                        1e-12 * std::fabs(expected);
  std::printf("energy (uninterrupted): %.15g\n", expected);
  std::printf("energy (restarted):     %.15g\n", actual);
  std::printf("restart %s\n", verified ? "VERIFIED" : "FAILED");
  return verified ? 0 : 1;
}
