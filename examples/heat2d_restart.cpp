// A fuller application-level C/R integration: a 2D heat solver with
// ghost-padded storage, driven through CheckpointManager (intervals + slot
// rotation) over the async double-buffered file backend, with a simulated
// mid-run crash and automatic restart from the newest valid pruned
// checkpoint.  maybe_checkpoint returns at buffer hand-off; the drain to
// disk overlaps the solver's next steps and restart() joins in-flight
// writes before choosing a slot.
//
// The solver (src/programs/heat2d.hpp) is a registry program: the offline
// analysis runs through the same ScrutinySession the CLI uses, gets
// persisted to a .scmask artifact, and the production run only consumes
// the resulting prune map — exactly the paper's "analyze once, checkpoint
// forever" split.  The storage is (n+2)x(n+4): one ghost ring plus two
// extra padding columns the analysis proves dead.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "ckpt/failure.hpp"
#include "ckpt/manager.hpp"
#include "core/analysis_io.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "programs/demo_programs.hpp"
#include "viz/viz.hpp"

int main() {
  using namespace scrutiny;
  using programs::Heat2d;
  const programs::Heat2dConfig config;

  // ---- analyze once, offline, through the session pipeline --------------
  programs::register_demo_programs();
  core::ScrutinySession session = core::ScrutinySession::open("Heat2d");
  session.analyze();  // the registered traits place the checkpoint window
  std::filesystem::create_directories("scrutiny_out");
  session.save_analysis("scrutiny_out/heat2d.scmask");

  // The production run below only needs the persisted artifact; reload it
  // the way a separate process would.
  const core::AnalysisArtifact artifact =
      core::load_analysis("scrutiny_out/heat2d.scmask");
  const core::AnalysisResult& analysis = artifact.result;
  std::printf("%s", core::format_criticality_table(analysis).c_str());
  const auto& mask = analysis.find("grid")->mask;
  std::printf("grid criticality (one row band):\n%s\n",
              viz::ascii_slice(mask,
                               {1, static_cast<std::size_t>(config.n + 2),
                                static_cast<std::size_t>(config.n + 4)},
                               0, 0)
                  .c_str());

  // ---- production run with periodic pruned checkpoints ------------------
  ckpt::ManagerConfig manager_config;
  manager_config.directory = "scrutiny_out/heat2d";
  manager_config.basename = "heat2d";
  manager_config.interval = 10;
  manager_config.keep_slots = 2;
  manager_config.write_regions_sidecar = true;
  // file+async: drain on a background thread (directory comes from
  // manager_config.directory, so the spec needs no path of its own).
  manager_config.storage = ckpt::BackendSpec::parse("file+async:");
  ckpt::CheckpointManager manager(manager_config);
  manager.set_prune_map(analysis.to_prune_map());
  std::printf("storage backend: %s\n", manager.storage().name().c_str());

  Heat2d<double> app(config);
  app.init();
  ckpt::CheckpointRegistry registry;
  app.register_checkpoint(registry);

  constexpr int kCrashAt = 37;
  for (int s = 1; s <= kCrashAt; ++s) {
    app.step();
    if (const auto report = manager.maybe_checkpoint(
            static_cast<std::uint64_t>(s), registry)) {
      std::printf("checkpoint @ step %d: %llu bytes (%llu elements "
                  "dropped, app blocked %.3f ms)\n",
                  s, static_cast<unsigned long long>(report->file_bytes),
                  static_cast<unsigned long long>(
                      report->elements_skipped),
                  report->seconds * 1e3);
    }
  }
  // Surface any background write error before we rely on the slots.
  manager.wait_for_io();
  std::printf("simulated crash at step %d\n", kCrashAt);

  // ---- restart: fresh process, poisoned memory, newest checkpoint -------
  Heat2d<double> restarted(config);
  restarted.init();
  ckpt::CheckpointRegistry restart_registry;
  restarted.register_checkpoint(restart_registry);
  ckpt::FailureInjector().poison_all(restart_registry);
  const auto restore = manager.restart(restart_registry);
  if (!restore.has_value()) {
    std::printf("no usable checkpoint found!\n");
    return 1;
  }
  std::printf("restarted from step %llu (restored %llu elements, left "
              "%llu untouched)\n",
              static_cast<unsigned long long>(restore->step),
              static_cast<unsigned long long>(restore->elements_restored),
              static_cast<unsigned long long>(
                  restore->elements_untouched));
  for (int s = static_cast<int>(restore->step); s < config.steps; ++s) {
    restarted.step();
  }

  // ---- verify against an uninterrupted run ------------------------------
  const double expected = session.golden_outputs()[0];
  const double actual = restarted.outputs()[0];
  const bool verified = std::fabs(expected - actual) <
                        1e-12 * std::fabs(expected);
  std::printf("energy (uninterrupted): %.15g\n", expected);
  std::printf("energy (restarted):     %.15g\n", actual);
  std::printf("restart %s\n", verified ? "VERIFIED" : "FAILED");
  return verified ? 0 : 1;
}
