// Explore the criticality structure of any built-in NPB mini-app:
// runs the analysis, prints the Table II rows, renders the distribution
// and writes the figure images — the workflow of the paper's §IV, driven
// from one command.
//
//   ./examples/npb_explorer            # defaults to LU
//   ./examples/npb_explorer MG
//   ./examples/npb_explorer FT --mode read-set --width 100
//   ./examples/npb_explorer BT --threads 0   # sweep on all hardware threads
//   ./examples/npb_explorer LU --tape-memory-limit 1048576
//       # out-of-core: spill cold tape segments past 1 MiB (masks are
//       # bit-identical to the unlimited run; omit for unlimited)
#include <cstdint>
#include <cstdio>

#include "core/report.hpp"
#include "npb/expected_masks.hpp"
#include "npb/suite.hpp"
#include "support/cli_args.hpp"
#include "support/format_util.hpp"
#include "viz/viz.hpp"

int main(int argc, char** argv) {
  using namespace scrutiny;
  const CliArgs args(argc, argv);

  const std::string name =
      args.positional().empty() ? "LU" : args.positional()[0];
  const auto id = npb::parse_benchmark(name);
  if (!id.has_value()) {
    std::fprintf(stderr, "unknown benchmark '%s' (try BT SP LU MG CG FT EP "
                         "IS)\n",
                 name.c_str());
    return 2;
  }

  const std::string mode_name = args.get("mode", "reverse-ad");
  core::AnalysisMode mode = core::AnalysisMode::ReverseAD;
  if (mode_name == "read-set") mode = core::AnalysisMode::ReadSet;
  if (*id == npb::BenchmarkId::IS) mode = core::AnalysisMode::ReadSet;

  const auto width = static_cast<std::size_t>(args.get_uint("width", 80));
  // Sweep thread count: 1 = serial (default), 0 = all hardware threads.
  // Masks are bit-identical either way.
  const auto threads = static_cast<std::uint32_t>(
      args.get_uint("threads", 1));
  // Tape byte budget: omitted = unlimited resident tape (the default, as
  // with the scrutiny CLI); 0 is not a budget and is rejected.  Masks are
  // bit-identical under any limit.
  std::uint64_t tape_memory_limit = 0;
  if (args.has("tape-memory-limit")) {
    tape_memory_limit = args.get_uint("tape-memory-limit", 0);
    if (tape_memory_limit == 0) {
      std::fprintf(stderr,
                   "--tape-memory-limit must be a positive byte count; "
                   "omit the flag for an unlimited resident tape\n");
      return 2;
    }
  }

  std::printf("analyzing %s (%s)...\n\n", npb::benchmark_name(*id),
              core::analysis_mode_name(mode));
  core::AnalysisConfig cfg =
      npb::default_analysis_config(*id, mode, threads);
  cfg.tape_memory_limit = tape_memory_limit;
  const auto analysis = npb::analyze_benchmark(*id, cfg);
  std::printf("%s", core::format_analysis_summary(analysis).c_str());
  std::printf("%s\n", core::format_criticality_table(analysis).c_str());

  for (const auto& variable : analysis.variables) {
    if (variable.total_elements() < 8) continue;
    std::printf("%s(%s): %s\n", analysis.program.c_str(),
                variable.name.c_str(),
                viz::run_length_summary(variable.mask).c_str());
    std::printf("[%s]\n", viz::ascii_strip(variable.mask, width).c_str());
    const auto expected = npb::expected_mask(*id, variable.name);
    if (expected.has_value()) {
      std::printf("matches the closed-form oracle: %s\n",
                  variable.mask == *expected ? "yes" : "NO");
    }
    const std::string file = std::string("scrutiny_out/") +
                             analysis.program + "_" + variable.name +
                             ".ppm";
    std::filesystem::create_directories("scrutiny_out");
    viz::write_ppm_strip(file, variable.mask, 256);
    std::printf("image: %s\n\n", file.c_str());
  }
  return 0;
}
