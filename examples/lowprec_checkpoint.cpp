// The paper's future-work idea, end to end (§VII): keep uncritical
// elements out of the checkpoint entirely AND store the lowest-impact
// critical elements of CG's x in float32, then quantify what the precision
// loss does to the verification values after a restart.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "ckpt/failure.hpp"
#include "ckpt/lowprec.hpp"
#include "core/impact.hpp"
#include "npb/cg.hpp"
#include "npb/suite.hpp"
#include "support/format_util.hpp"

int main() {
  using namespace scrutiny;

  // Capture |d outputs / d element| magnitudes during the reverse sweep.
  auto cfg = npb::default_analysis_config(npb::BenchmarkId::CG);
  cfg.capture_impact = true;
  const auto analysis = npb::analyze_benchmark(npb::BenchmarkId::CG, cfg);
  const auto& x = *analysis.find("x");

  // Impact distribution snapshot.
  double min_impact = 1e300, max_impact = 0.0;
  for (std::size_t e = 0; e < x.mask.size(); ++e) {
    if (!x.mask.test(e)) continue;
    min_impact = std::min(min_impact, x.impact[e]);
    max_impact = std::max(max_impact, x.impact[e]);
  }
  std::printf("CG(x): %zu critical elements, impact range [%.3e, %.3e]\n",
              x.mask.count_critical(), min_impact, max_impact);

  // Golden run for comparison.
  npb::CgApp<double> golden;
  golden.init();
  for (int s = 0; s < golden.total_steps(); ++s) golden.step();
  const auto golden_out = golden.outputs();

  std::filesystem::create_directories("scrutiny_out/lowprec");
  std::printf("\n%-14s %-14s %-14s %-14s\n", "low fraction", "payload",
              "zeta rel.err", "rnorm rel.err");
  for (double fraction : {0.0, 0.5, 0.9, 1.0}) {
    const core::ImpactPartition partition =
        core::partition_by_impact(x, fraction);

    ckpt::PrecisionMap plans;
    plans["x"] = ckpt::PrecisionPlan{x.mask, partition.low_impact};

    npb::CgApp<double> writer;
    writer.init();
    for (int s = 0; s < cfg.warmup_steps; ++s) writer.step();
    ckpt::CheckpointRegistry registry;
    writer.register_checkpoint(registry);
    const std::filesystem::path path =
        "scrutiny_out/lowprec/cg_" +
        std::to_string(static_cast<int>(fraction * 100)) + ".ckpt";
    const auto report = ckpt::write_mixed_checkpoint(
        path, registry, static_cast<std::uint64_t>(cfg.warmup_steps),
        plans);

    npb::CgApp<double> restarted;
    restarted.init();
    ckpt::CheckpointRegistry restart_registry;
    restarted.register_checkpoint(restart_registry);
    ckpt::FailureInjector().poison_all(restart_registry);
    const auto restore =
        ckpt::restore_mixed_checkpoint(path, restart_registry);
    for (int s = static_cast<int>(restore.step);
         s < restarted.total_steps(); ++s) {
      restarted.step();
    }
    const auto out = restarted.outputs();
    const double zeta_err =
        std::fabs(out[0] - golden_out[0]) / std::fabs(golden_out[0]);
    const double rnorm_err =
        std::fabs(out[1] - golden_out[1]) /
        std::max(1e-300, std::fabs(golden_out[1]));
    std::printf("%-14s %-14s %-14.3e %-14.3e\n",
                percent(fraction).c_str(),
                human_bytes(report.payload_bytes).c_str(), zeta_err,
                rnorm_err);
  }
  std::printf(
      "\nCG self-corrects: the inner solve re-derives z from A and x, so\n"
      "float32 storage of low-impact x elements perturbs the verification\n"
      "values only at the fp32 noise floor — checkpoints shrink by another\n"
      "~half on top of the pruning of this paper.\n");
  return 0;
}
