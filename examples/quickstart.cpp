// Quickstart: scrutinize a user-defined simulation for checkpointing.
//
// The program is a 1D heat rod whose developer over-allocated the state
// array (a padded tail that no loop ever touches).  Scrutiny finds the
// dead elements with reverse-mode AD, a pruned checkpoint drops them, and
// a restart from that checkpoint reproduces the uninterrupted run even
// with the dead elements poisoned.
//
// Build & run:  ./examples/quickstart
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "ckpt/checkpoint_io.hpp"
#include "ckpt/failure.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "viz/viz.hpp"

// ---------------------------------------------------------------------------
// 1. Your simulation, templated on the scalar type.
// ---------------------------------------------------------------------------
struct HeatRodConfig {
  int cells = 96;       // active cells
  int padding = 32;     // the "imperfect coding": allocated, never used
  double alpha = 0.2;   // diffusion number
};

template <typename T>
class HeatRod {
 public:
  using Config = HeatRodConfig;
  static constexpr const char* kName = "HeatRod";

  explicit HeatRod(const Config& config = {}) : cfg_(config) {}

  void init() {
    step_ = 0;
    temperature_.assign(
        static_cast<std::size_t>(cfg_.cells + cfg_.padding), T(0));
    for (int i = 0; i < cfg_.cells + cfg_.padding; ++i) {
      temperature_[static_cast<std::size_t>(i)] =
          T(std::sin(0.2 * i) + 2.0);
    }
  }

  void step() {
    // Explicit diffusion over the ACTIVE cells only.
    std::vector<T> next = temperature_;
    for (int i = 1; i + 1 < cfg_.cells; ++i) {
      const auto c = static_cast<std::size_t>(i);
      next[c] = temperature_[c] +
                cfg_.alpha * (temperature_[c - 1] - 2.0 * temperature_[c] +
                              temperature_[c + 1]);
    }
    temperature_ = std::move(next);
    ++step_;
  }

  std::vector<T> outputs() {
    T total = T(0);
    for (int i = 0; i < cfg_.cells; ++i) {
      total += temperature_[static_cast<std::size_t>(i)];
    }
    return {total};
  }

  std::vector<scrutiny::core::VarBind<T>> checkpoint_bindings() {
    std::vector<scrutiny::core::VarBind<T>> binds;
    binds.push_back(scrutiny::core::bind_array<T>(
        "temperature",
        std::span<T>(temperature_.data(), temperature_.size())));
    binds.push_back(scrutiny::core::bind_integer<T>("step", 1));
    return binds;
  }

  void register_checkpoint(scrutiny::ckpt::CheckpointRegistry& registry)
    requires std::same_as<T, double>
  {
    registry.register_f64("temperature",
                          std::span<double>(temperature_.data(),
                                            temperature_.size()));
    registry.register_scalar("step", step_);
  }

  [[nodiscard]] int total_steps() const { return 40; }

 private:
  Config cfg_;
  std::int32_t step_ = 0;
  std::vector<T> temperature_;
};

int main() {
  using namespace scrutiny;

  // -------------------------------------------------------------------
  // 2. Scrutinize: which checkpointed elements can influence the output?
  // -------------------------------------------------------------------
  core::AnalysisConfig analysis_config;
  analysis_config.warmup_steps = 10;  // checkpoint placement
  analysis_config.window_steps = 2;   // post-checkpoint window
  const core::AnalysisResult analysis =
      core::analyze_program<HeatRod>({}, analysis_config);

  std::printf("%s", core::format_analysis_summary(analysis).c_str());
  std::printf("%s", core::format_criticality_table(analysis).c_str());
  const auto& mask = analysis.find("temperature")->mask;
  std::printf("temperature criticality: [%s]\n\n",
              viz::ascii_strip(mask, 64).c_str());

  // -------------------------------------------------------------------
  // 3. Write a pruned checkpoint at step 10.
  // -------------------------------------------------------------------
  const std::filesystem::path dir = "scrutiny_out/quickstart";
  std::filesystem::create_directories(dir);
  HeatRod<double> app;
  app.init();
  for (int s = 0; s < 10; ++s) app.step();
  ckpt::CheckpointRegistry registry;
  app.register_checkpoint(registry);
  const ckpt::PruneMap masks = analysis.to_prune_map();
  const ckpt::WriteReport report =
      ckpt::write_checkpoint(dir / "rod.ckpt", registry, 10, &masks);
  std::printf("checkpoint: %llu bytes, %llu elements dropped\n",
              static_cast<unsigned long long>(report.file_bytes),
              static_cast<unsigned long long>(report.elements_skipped));

  // -------------------------------------------------------------------
  // 4. Crash, restart from critical elements only, verify.
  // -------------------------------------------------------------------
  HeatRod<double> golden;
  golden.init();
  for (int s = 0; s < golden.total_steps(); ++s) golden.step();

  HeatRod<double> restarted;
  restarted.init();
  ckpt::CheckpointRegistry restart_registry;
  restarted.register_checkpoint(restart_registry);
  ckpt::FailureInjector injector;
  injector.poison_all(restart_registry);  // the failure
  const auto restore =
      ckpt::restore_checkpoint(dir / "rod.ckpt", restart_registry);
  for (int s = static_cast<int>(restore.step);
       s < restarted.total_steps(); ++s) {
    restarted.step();
  }

  const double expected = golden.outputs()[0];
  const double actual = restarted.outputs()[0];
  std::printf("uninterrupted output: %.15g\n", expected);
  std::printf("restarted output:     %.15g\n", actual);
  std::printf("restart %s\n",
              std::fabs(expected - actual) < 1e-12 ? "VERIFIED" : "FAILED");
  return std::fabs(expected - actual) < 1e-12 ? 0 : 1;
}
