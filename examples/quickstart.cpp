// Quickstart: scrutinize a user-defined simulation for checkpointing.
//
// The program is a 1D heat rod whose developer over-allocated the state
// array (a padded tail that no loop ever touches).  It is registered as a
// scrutiny program (src/programs/heat_rod.hpp — the exact same
// make_program<App>() call any user application would write), then driven
// through the ScrutinySession pipeline: analyze → plan → write → restart →
// verify, with the analysis persisted to a .scmask artifact and reloaded
// the way `scrutiny analyze --save-masks` / `verify --masks` do.
//
// Build & run:  ./examples/quickstart
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>

#include "ckpt/memory_backend.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "core/session.hpp"
#include "programs/demo_programs.hpp"
#include "viz/viz.hpp"

int main() {
  using namespace scrutiny;

  // -------------------------------------------------------------------
  // 1. Register your program (HeatRod conforms to the App<T> concept and
  //    self-registers through make_program<HeatRod>()).
  // -------------------------------------------------------------------
  programs::register_demo_programs();
  core::ScrutinySession session = core::ScrutinySession::open("HeatRod");

  // -------------------------------------------------------------------
  // 2. Scrutinize: which checkpointed elements can influence the output?
  // -------------------------------------------------------------------
  core::AnalysisConfig config = session.program().default_config();
  config.warmup_steps = 10;  // checkpoint placement
  config.window_steps = 2;   // post-checkpoint window
  const core::AnalysisResult& analysis = session.analyze(config);

  std::printf("%s", core::format_analysis_summary(analysis).c_str());
  std::printf("%s", core::format_criticality_table(analysis).c_str());
  const auto& mask = analysis.find("temperature")->mask;
  std::printf("temperature criticality: [%s]\n\n",
              viz::ascii_strip(mask, 64).c_str());

  // -------------------------------------------------------------------
  // 3. Plan, persist the masks, and write a pruned checkpoint at step 10.
  // -------------------------------------------------------------------
  const std::filesystem::path dir = "scrutiny_out/quickstart";
  std::filesystem::create_directories(dir);

  const core::CheckpointPlan plan = session.plan();
  std::printf("plan: %llu -> %llu payload bytes (%.1f%% saved)\n",
              static_cast<unsigned long long>(plan.full_payload_bytes),
              static_cast<unsigned long long>(plan.pruned_payload_bytes),
              100.0 * plan.payload_saving());

  session.save_analysis(dir / "rod.scmask");
  const ckpt::WriteReport report = session.write_checkpoint(dir / "rod.ckpt");
  std::printf("checkpoint: %llu bytes, %llu elements dropped\n",
              static_cast<unsigned long long>(report.file_bytes),
              static_cast<unsigned long long>(report.elements_skipped));

  // -------------------------------------------------------------------
  // 4. Crash, restart from critical elements only, verify.  A fresh
  //    session reuses the persisted masks — no re-analysis.
  // -------------------------------------------------------------------
  core::ScrutinySession restarted = core::ScrutinySession::open("HeatRod");
  restarted.load_analysis(dir / "rod.scmask");
  std::printf("masks reloaded from artifact: %s\n",
              restarted.analysis_was_loaded() ? "yes" : "no");

  const double expected = restarted.golden_outputs()[0];
  const double actual = restarted.restart(dir / "rod.ckpt")[0];
  std::printf("uninterrupted output: %.15g\n", expected);
  std::printf("restarted output:     %.15g\n", actual);
  std::printf("restart %s\n",
              std::fabs(expected - actual) < 1e-12 ? "VERIFIED" : "FAILED");
  if (std::fabs(expected - actual) >= 1e-12) return 1;

  // -------------------------------------------------------------------
  // 5. Storage is pluggable: the same pipeline legs run against the
  //    in-memory backend — no files, same bytes, same restart.
  // -------------------------------------------------------------------
  auto store = std::make_shared<ckpt::MemoryBackend>();
  core::ScrutinySession in_memory = core::ScrutinySession::open("HeatRod");
  in_memory.use_storage(store);
  in_memory.load_analysis(dir / "rod.scmask");
  const ckpt::WriteReport mem_report =
      in_memory.write_checkpoint("rod.mem.ckpt");
  const double mem_actual = in_memory.restart("rod.mem.ckpt")[0];
  std::printf("memory backend: %llu container bytes (%.1f MB/s) in %zu "
              "objects, restart %s\n",
              static_cast<unsigned long long>(store->total_bytes()),
              mem_report.mb_per_second(), store->object_count(),
              std::fabs(expected - mem_actual) < 1e-12 ? "VERIFIED"
                                                       : "FAILED");
  return std::fabs(expected - mem_actual) < 1e-12 ? 0 : 1;
}
